//! Conservative parallel discrete-event simulation (PDES).
//!
//! The sequential engine processes one global `(time, seq)`-ordered event
//! stream. This module splits the node set into partitions — one worker
//! thread each — and lets every partition advance its **own** timer wheel
//! concurrently, exploiting the classic conservative-PDES observation: a
//! message from another partition cannot arrive sooner than the
//! cross-partition propagation latency, the **lookahead**. Execution
//! proceeds in lockstep windows:
//!
//! 1. **Window (parallel)** — each worker drains its wheel up to the shared
//!    pop horizon. Events it generates stay local (provisionally sequenced)
//!    when they land inside the window on an owned node; everything else
//!    goes to a per-window outbox.
//! 2. **Barrier (sequential)** — the driver merges the per-partition
//!    dispatch logs back into the single global `(time, seq)` order with a
//!    loser-tree k-way merge (the logs are already sorted), replaying
//!    sequence-number assignment, the canonical [`TraceDigest`] fold,
//!    capture, and the debug trace ring exactly as the sequential engine
//!    would have; then it routes outbox events (which provably land beyond
//!    the window) to their owners' wheels, batched per destination, and
//!    picks the next window.
//!
//! Window boundaries come from a [`WindowPolicy`]. The default **adaptive**
//! policy closes each window at `min over partitions p with pending events
//! of (p's exact next event time + p's minimum outgoing cross-partition
//! latency) − 1` — a per-partition-pair lookahead matrix plus a
//! next-event-time bound. Sparse or bursty topologies therefore run long
//! windows with few barriers: an idle stretch is crossed in one hop to the
//! true next event ([`TimerWheel::earliest_event_time`]), not crawled
//! through in fixed strides from a coarse wheel-bucket bound. The
//! **fixed-min-L** policy reproduces the original single global
//! `L = min cross-partition latency` stride for differential tests and
//! barrier-count comparisons.
//!
//! Because everything order-sensitive — sequencing, digest, trace, RNG
//! draws — is either partition-local or replayed at the barrier in merged
//! order, the result is **bit-identical** to the sequential engine for any
//! thread count and either policy. Randomized network jitter and fault
//! omission hold too: their draws come from per-link counter-keyed streams
//! (`hash(stream_seed, link, draw_index)`), each link is drawn only by the
//! partition that owns its sender, and a partition dispatches its nodes'
//! events in exactly the sequential order — so every link observes the
//! sequential draw sequence regardless of thread interleaving. The
//! differential tests at the bottom of this file and the CI determinism
//! matrix hold the engine to that: same fingerprint, same counters, same
//! retained events, at 1, 2, or 8 threads, jittered or not.
//!
//! Parallelism silently disengages (the caller falls back to the sequential
//! loop) only when it could not be equivalent or could not help: profiling
//! (wall-clock attribution is per-thread), fewer than two partitions, or
//! zero lookahead.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::actor::{Actor, Context, NodeId, Op, Payload, TimerTag};
use crate::engine::{NetHandles, NodeHandles, Sim};
use crate::faults::FaultPlan;
use crate::metrics::{Labels, Metrics};
use crate::net::{LatencyModel, Network, Region};
use crate::queue::{Event, EventKind, TimerSlots, TimerWheel};
use crate::time::{SimDuration, SimTime};
use crate::trace::{CanonEvent, TraceEvent, TraceKind};

use predis_parallel::run_lockstep;
use predis_types::payload_stats;

/// Provisional sequence numbers handed to events staged inside a window,
/// before the barrier merge assigns their real ones. The high bit keeps
/// every provisional number above every final number, which is exactly the
/// order the sequential engine would produce: an event generated during the
/// window always sequences after every event that already existed when the
/// window began.
const PROVISIONAL_BASE: u64 = 1 << 63;

/// How the lockstep driver picks each window's shared pop horizon.
///
/// Both policies produce the exact same event stream (the conservative
/// guarantee — no cross-partition arrival inside a window — holds for
/// either); they differ only in how many barriers it takes to get there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowPolicy {
    /// Close each window at the latest provably-safe instant:
    /// `min over partitions p with pending events of (p's exact next event
    /// time + p's minimum outgoing cross-partition latency) − 1`.
    ///
    /// No message sent from `p` during the window can land at or before
    /// that instant, and the bound is tight: one nanosecond later could
    /// admit one. Because the per-partition term uses the *exact* next
    /// event time (`TimerWheel::earliest_event_time`), an idle stretch is
    /// crossed in a single window regardless of length — barrier counts
    /// track event density, not the latency floor.
    #[default]
    Adaptive,
    /// The original fixed stride: every window is exactly
    /// `L = min cross-partition latency` long, starting from the earliest
    /// pending wheel lower bound. Kept as the differential baseline for
    /// barrier-count comparisons; strictly never fewer barriers than
    /// [`WindowPolicy::Adaptive`].
    FixedMinL,
}

/// One entry of a partition's per-window dispatch log: the canonical
/// pre-filter record of a popped event (everything [`CanonEvent`] needs),
/// plus how the dispatch was disposed of — whether it passed the liveness
/// filters (`ran`, which gates the debug trace ring) and how many
/// order-sensitive side effects it produced.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    at: SimTime,
    /// Final sequence number, or `PROVISIONAL_BASE + k` for the `k`-th
    /// event staged by this partition in this window.
    seq: u64,
    node: u32,
    /// Canonical kind code (same encoding as [`crate::trace::CANON_KINDS`]).
    kind: u64,
    from: Option<NodeId>,
    bytes: u64,
    tag: Option<TimerTag>,
    ran: bool,
    /// Number of [`Effect`]s this dispatch appended.
    effects: u32,
}

/// An order-sensitive side effect of one dispatch, replayed at the barrier
/// against the global engine state in exact merged order.
#[derive(Debug, Clone, Copy)]
enum Effect {
    /// The dispatch scheduled an event that stayed in this partition's
    /// wheel: assign the next global sequence number to the partition's
    /// next staged event (staged order equals effect order by
    /// construction).
    StagedSeq,
    /// The dispatch scheduled an event beyond the window or across a
    /// partition boundary: assign the next global sequence number to
    /// outbox slot `i`.
    OutboxSeq(u32),
    /// A message died on the wire: replay the trace-ring drop record the
    /// sequential engine's `record_drop` would have emitted here (its
    /// metric increments already happened on the worker's forked sink).
    Drop {
        from: NodeId,
        to: NodeId,
        bytes: usize,
    },
}

/// A node partition: one worker thread's complete, self-contained slice of
/// the simulation. Per-node state (actors, RNGs, liveness flags, timer
/// arenas) is *moved* in at session start and moved back at teardown;
/// shared-read state (network, fault plan, counter handles) is cloned; the
/// metrics sink is a zeroed fork absorbed back at teardown.
struct Shard<M> {
    id: u32,
    /// Owned nodes, ascending global index; position = local index.
    nodes: Vec<u32>,
    /// Global node index -> owning partition id.
    owner: Vec<u32>,
    /// Global node index -> local index within its owning partition.
    local: Vec<u32>,
    node_count_total: u32,
    wheel: TimerWheel<M>,
    // Per-owned-node state, locally indexed.
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    rngs: Vec<SmallRng>,
    halted: Vec<bool>,
    /// Mirror of `Sim::crash_halted`: plan-driven halts only, so inline
    /// revival never resurrects a voluntary `Op::Halt`.
    crash_halted: Vec<bool>,
    started: Vec<bool>,
    epochs: Vec<u32>,
    timers: Vec<TimerSlots>,
    // Cloned / forked global state.
    network: Network,
    faults: FaultPlan,
    metrics: Metrics,
    net_handles: NetHandles,
    node_handles: Vec<NodeHandles>,
    ops_scratch: Vec<Op<M>>,
    // Window state.
    pop_horizon: SimTime,
    log: Vec<LogEntry>,
    effects: Vec<Effect>,
    outbox: Vec<Event<M>>,
    staged_count: u64,
    // Barrier-merge cursors (driver side).
    log_cursor: usize,
    effect_cursor: usize,
    /// Final sequence numbers assigned (in staging order) to this window's
    /// staged events; indexed by the provisional offset `k`.
    staged_final: Vec<u64>,
}

impl<M: Payload> Shard<M> {
    /// Drains every event up to (and including) the window's pop horizon,
    /// mirroring the sequential engine's dispatch exactly.
    fn run_window(&mut self) {
        while let Some(event) = self.wheel.pop_next(self.pop_horizon) {
            self.dispatch(event);
        }
    }

    /// The partition-local twin of `Sim::dispatch`. Every branch below
    /// matches the sequential engine line for line; global side effects
    /// (sequence numbers, digest, capture, trace ring) are recorded as log
    /// entries and [`Effect`]s for the barrier to replay in merged order.
    fn dispatch(&mut self, event: Event<M>) {
        let (kind, from, bytes, tag) = match &event.kind {
            EventKind::Start => (0u64, None, 0u64, None),
            EventKind::Deliver { from, bytes, .. } => (1, Some(*from), *bytes as u64, None),
            EventKind::Timer { tag, .. } => (2, None, 0, Some(*tag)),
            EventKind::Crash => (3, None, 0, None),
            EventKind::Revive => (4, None, 0, None),
        };
        let entry = self.log.len();
        self.log.push(LogEntry {
            at: event.at,
            seq: event.seq,
            node: event.node.0,
            kind,
            from,
            bytes,
            tag,
            ran: false,
            effects: 0,
        });
        let node = event.node;
        let idx = self.local[node.index()] as usize;
        // Effects emitted from here on (including an inline revival's
        // `on_start` ops) belong to this log entry, so the barrier replays
        // them inside this event's slot.
        let effects_before = self.effects.len();
        let timer_live = match event.kind {
            EventKind::Timer { id, .. } => self.timers[idx].resolve(id),
            _ => true,
        };
        if let EventKind::Revive = event.kind {
            if !self.crash_halted[idx] {
                return;
            }
            self.halted[idx] = false;
            self.crash_halted[idx] = false;
            self.epochs[idx] += 1;
        } else if self.halted[idx] {
            // Plan-driven revival, exactly as in the sequential engine: the
            // window `[at, until)` has closed, so the node is up at `until`
            // regardless of how this event's seq interleaves with the
            // bookkeeping revive event's.
            if self.crash_halted[idx] && !self.faults.is_crashed(node, event.at) {
                self.halted[idx] = false;
                self.crash_halted[idx] = false;
                self.epochs[idx] += 1;
                if self.started[idx] {
                    self.run_on_start(event.at, node);
                    self.log[entry].effects = (self.effects.len() - effects_before) as u32;
                }
            } else {
                return;
            }
        }
        match event.kind {
            EventKind::Start => self.started[idx] = true,
            _ if !self.started[idx] => return,
            EventKind::Crash => {
                self.halted[idx] = true;
                self.crash_halted[idx] = true;
                return;
            }
            EventKind::Timer { .. } if !timer_live => return,
            EventKind::Timer { epoch, .. } if epoch != self.epochs[idx] => return,
            _ => {}
        }
        if self.faults.is_crashed(node, event.at) {
            self.halted[idx] = true;
            self.crash_halted[idx] = true;
            return;
        }
        match &event.kind {
            EventKind::Deliver { bytes, .. } => {
                let handles = self.node_handles[node.index()];
                self.metrics.incr_handle(handles.deliveries, 1);
                self.metrics
                    .incr_handle(handles.delivered_bytes, *bytes as u64);
            }
            EventKind::Timer { .. } => {
                self.metrics
                    .incr_handle(self.node_handles[node.index()].timers, 1);
            }
            _ => {}
        }
        self.log[entry].ran = true;
        let mut actor = match self.actors[idx].take() {
            Some(a) => a,
            None => return,
        };
        let mut ops = std::mem::take(&mut self.ops_scratch);
        debug_assert!(ops.is_empty());
        {
            let mut ctx = Context {
                now: event.at,
                node,
                node_count: self.node_count_total,
                link_free_at: self.network.link_free_at(node),
                timers: &mut self.timers[idx],
                ops: &mut ops,
                rng: &mut self.rngs[idx],
                metrics: &mut self.metrics,
            };
            match event.kind {
                EventKind::Start | EventKind::Revive => actor.on_start(&mut ctx),
                EventKind::Deliver { from, msg, .. } => actor.on_message(&mut ctx, from, msg),
                EventKind::Timer { tag, .. } => actor.on_timer(&mut ctx, tag),
                EventKind::Crash => unreachable!("handled above"),
            }
        }
        self.actors[idx] = Some(actor);
        self.apply_ops(event.at, node, &mut ops);
        self.log[entry].effects = (self.effects.len() - effects_before) as u32;
        self.ops_scratch = ops;
    }

    /// Partition-local twin of `Sim::run_on_start` (inline revival).
    fn run_on_start(&mut self, at: SimTime, node: NodeId) {
        let idx = self.local[node.index()] as usize;
        let mut actor = match self.actors[idx].take() {
            Some(a) => a,
            None => return,
        };
        let mut ops = std::mem::take(&mut self.ops_scratch);
        debug_assert!(ops.is_empty());
        {
            let mut ctx = Context {
                now: at,
                node,
                node_count: self.node_count_total,
                link_free_at: self.network.link_free_at(node),
                timers: &mut self.timers[idx],
                ops: &mut ops,
                rng: &mut self.rngs[idx],
                metrics: &mut self.metrics,
            };
            actor.on_start(&mut ctx);
        }
        self.actors[idx] = Some(actor);
        self.apply_ops(at, node, &mut ops);
        self.ops_scratch = ops;
    }

    fn apply_ops(&mut self, at: SimTime, node: NodeId, ops: &mut Vec<Op<M>>) {
        for op in ops.drain(..) {
            match op {
                Op::Send { to, msg, bytes } => {
                    debug_assert_eq!(
                        bytes,
                        msg.wire_size(),
                        "cached wire size diverged from recomputed size"
                    );
                    if to.index() >= self.node_count_total as usize {
                        self.metrics.incr_handle(self.net_handles.messages, 1);
                        self.metrics
                            .incr_handle(self.net_handles.bytes, bytes as u64);
                        self.record_drop(node, to, bytes);
                        continue;
                    }
                    // Jitter and omission draws come from the sender's
                    // counter-keyed link stream. Only this partition ever
                    // draws on this link, and it dispatches its nodes'
                    // events in exactly the sequential order, so the draw
                    // counter advances identically at every thread count.
                    let sched = self.network.schedule(at, node, to, bytes);
                    self.metrics.incr_handle(self.net_handles.messages, 1);
                    self.metrics
                        .incr_handle(self.net_handles.bytes, bytes as u64);
                    let network = &mut self.network;
                    if !self
                        .faults
                        .delivers(node, to, at, || network.next_draw(node))
                    {
                        self.record_drop(node, to, bytes);
                        continue;
                    }
                    self.push_event(
                        sched.arrives,
                        to,
                        EventKind::Deliver {
                            from: node,
                            msg,
                            bytes,
                        },
                    );
                }
                Op::SetTimer { id, fire_at, tag } => {
                    let epoch = self.epochs[self.local[node.index()] as usize];
                    self.push_event(fire_at, node, EventKind::Timer { id, tag, epoch });
                }
                Op::CancelTimer { id } => {
                    self.timers[self.local[node.index()] as usize].cancel(id);
                }
                Op::Halt => {
                    self.halted[self.local[node.index()] as usize] = true;
                }
            }
        }
    }

    /// Stages an event locally when it provably belongs to this partition's
    /// current window; otherwise parks it in the outbox for the barrier to
    /// sequence and route. Staying inside the window is what lets the
    /// provisional sequence numbers resolve before any later window runs.
    fn push_event(&mut self, at: SimTime, to: NodeId, kind: EventKind<M>) {
        if self.owner[to.index()] == self.id && at <= self.pop_horizon {
            let seq = PROVISIONAL_BASE + self.staged_count;
            self.staged_count += 1;
            self.effects.push(Effect::StagedSeq);
            self.wheel.push(Event {
                at,
                seq,
                node: to,
                kind,
            });
        } else {
            self.effects
                .push(Effect::OutboxSeq(self.outbox.len() as u32));
            self.outbox.push(Event {
                at,
                seq: 0, // patched by the barrier's OutboxSeq replay
                node: to,
                kind,
            });
        }
    }

    /// Partition-local half of the sequential engine's `record_drop`: the
    /// metric increments happen here on the forked sink; the trace-ring
    /// record (which needs the global sequence counter) is deferred to the
    /// barrier as an [`Effect::Drop`].
    fn record_drop(&mut self, from: NodeId, to: NodeId, bytes: usize) {
        self.metrics.incr_handle(self.net_handles.dropped, 1);
        self.metrics
            .incr_handle(self.net_handles.dropped_bytes, bytes as u64);
        match self.node_handles.get(to.index()) {
            Some(handles) => self.metrics.incr_handle(handles.drops, 1),
            None => self
                .metrics
                .incr_labeled("node.drops", Labels::node(to.index() as u64), 1),
        }
        self.effects.push(Effect::Drop { from, to, bytes });
    }
}

/// A partitioning of the node set plus its lookahead structure.
struct Plan {
    owner: Vec<u32>,
    local: Vec<u32>,
    parts: Vec<Vec<u32>>,
    /// Row minima of the pairwise lookahead matrix: `out_min[p]` is the
    /// minimum one-way propagation latency from any node in partition `p`
    /// to any node in a *different* partition — the earliest any send from
    /// `p` can cross a partition boundary. The adaptive window bound only
    /// ever needs these row minima (the shared pop horizon is a min over
    /// receivers anyway), so the full matrix is not retained.
    out_min: Vec<SimDuration>,
    /// Global minimum of the matrix: the fixed window stride of
    /// [`WindowPolicy::FixedMinL`].
    l_min: SimDuration,
}

/// Partitions the node set for `sim.threads` workers.
///
/// Affinity comes from [`Sim::set_partition_hint`] when present (each hint
/// group stays whole; unmentioned nodes become singletons); otherwise nodes
/// group by region under a regional latency model and are free under a
/// uniform one. Groups pack greedy largest-first onto the least-loaded
/// worker. Lookahead is computed as a per-partition-pair matrix — the
/// minimum one-way propagation latency between the two partitions' region
/// sets — folded into per-partition outgoing minima and a global minimum.
///
/// Returns `None` (sequential fallback) when fewer than two partitions
/// materialize or the global minimum lookahead is zero.
fn plan_partitions<M: Payload>(sim: &Sim<M>) -> Option<Plan> {
    let n = sim.actors.len();
    if n < 2 {
        return None;
    }
    let mut groups: Vec<Vec<u32>> = Vec::new();
    if let Some(hint) = &sim.partition_hint {
        let mut seen = vec![false; n];
        for hint_group in hint {
            let mut group = Vec::new();
            for node in hint_group {
                let i = node.index();
                if i < n && !seen[i] {
                    seen[i] = true;
                    group.push(i as u32);
                }
            }
            if !group.is_empty() {
                groups.push(group);
            }
        }
        for (i, seen) in seen.iter().enumerate() {
            if !seen {
                groups.push(vec![i as u32]);
            }
        }
    } else {
        match sim.network.latency_model() {
            LatencyModel::Regional { .. } => {
                let mut by_region: BTreeMap<Region, Vec<u32>> = BTreeMap::new();
                for i in 0..n {
                    let region = sim.network.link_config(NodeId(i as u32)).region;
                    by_region.entry(region).or_default().push(i as u32);
                }
                groups.extend(by_region.into_values());
            }
            LatencyModel::Uniform(_) => groups.extend((0..n).map(|i| vec![i as u32])),
        }
    }
    let bins = sim.threads.min(groups.len());
    if bins < 2 {
        return None;
    }
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(groups[g].len()));
    let mut parts: Vec<Vec<u32>> = vec![Vec::new(); bins];
    for g in order {
        let bin = (0..bins)
            .min_by_key(|&b| parts[b].len())
            .expect("bins >= 2");
        parts[bin].extend(&groups[g]);
    }
    for part in &mut parts {
        part.sort_unstable();
    }
    debug_assert!(parts.iter().all(|p| !p.is_empty()));
    let mut owner = vec![0u32; n];
    let mut local = vec![0u32; n];
    for (p, part) in parts.iter().enumerate() {
        for (l, &g) in part.iter().enumerate() {
            owner[g as usize] = p as u32;
            local[g as usize] = l as u32;
        }
    }
    let model = sim.network.latency_model();
    let regions: Vec<Vec<Region>> = parts
        .iter()
        .map(|part| {
            let mut rs: Vec<Region> = part
                .iter()
                .map(|&g| sim.network.link_config(NodeId(g)).region)
                .collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        })
        .collect();
    // Pairwise lookahead matrix over the partitions' region sets. The
    // diagonal is meaningless (intra-partition traffic never crosses a
    // barrier) and stays at the `None` placeholder.
    let nparts = parts.len();
    let mut direct: Vec<Vec<Option<SimDuration>>> = vec![vec![None; nparts]; nparts];
    for p in 0..nparts {
        for q in 0..nparts {
            if p == q {
                continue;
            }
            for &a in &regions[p] {
                for &b in &regions[q] {
                    let d = model.latency(a, b);
                    if direct[p][q].is_none_or(|cur| d < cur) {
                        direct[p][q] = Some(d);
                    }
                }
            }
        }
    }
    let out_min: Vec<SimDuration> = (0..nparts)
        .map(|p| {
            direct[p]
                .iter()
                .flatten()
                .min()
                .copied()
                .expect("at least two non-empty partitions")
        })
        .collect();
    let l_min = *out_min.iter().min().expect("at least two partitions");
    if l_min.is_zero() {
        return None;
    }
    Some(Plan {
        owner,
        local,
        parts,
        out_min,
        l_min,
    })
}

/// The window end clipped to the run horizon, *exclusive* of the window end
/// itself: `pop_next` is inclusive, so the last nanosecond of every window
/// belongs to the next one — which is exactly where a cross-partition send
/// emitted at the window's first instant can land.
fn pop_horizon_for(w_start: SimTime, lookahead: SimDuration, horizon: SimTime) -> SimTime {
    let w_end = w_start + lookahead;
    SimTime::from_nanos(w_end.as_nanos() - 1).min(horizon)
}

/// The [`WindowPolicy::Adaptive`] pop horizon:
/// `min over partitions p with pending events of (p's exact next event time
/// + out_min[p]) − 1`, clipped to the run horizon.
///
/// Safety: every cross-partition arrival produced inside the window departs
/// at some dispatch time `t ≥ exact_p` on its partition `p` and lands no
/// earlier than `t + out_min[p]`, i.e. strictly beyond the returned pop
/// horizon — so routing it at the barrier is never late. Progress: the
/// bound is at least `min_p exact_p + l_min − 1 ≥ min_p exact_p`, so the
/// globally earliest event always falls inside the window; no separate
/// progress floor is needed. Idle partitions contribute nothing (a
/// partition with no pending events cannot originate a send).
///
/// Returns `None` when no partition has an event at or before `horizon`.
fn adaptive_pop_horizon<M: Payload>(
    shards: &[Shard<M>],
    out_min: &[SimDuration],
    horizon: SimTime,
) -> Option<SimTime> {
    let mut earliest: Option<SimTime> = None;
    let mut bound: Option<u64> = None;
    for (p, shard) in shards.iter().enumerate() {
        let Some(t) = shard.wheel.earliest_event_time() else {
            continue;
        };
        if earliest.is_none_or(|cur| t < cur) {
            earliest = Some(t);
        }
        let b = t.as_nanos().saturating_add(out_min[p].as_nanos());
        if bound.is_none_or(|cur| b < cur) {
            bound = Some(b);
        }
    }
    if earliest? > horizon {
        return None;
    }
    let bound = bound.expect("bound is set whenever earliest is");
    Some(SimTime::from_nanos(bound - 1).min(horizon))
}

/// Runs the simulation in parallel up to `horizon`. Returns `false`
/// (without touching any state) when no viable partitioning exists; the
/// caller then runs the sequential loop. On `true`, the event stream,
/// digest, trace, metrics, RNG states, and queue contents are bit-identical
/// to what the sequential loop would have produced.
pub(crate) fn run_until_parallel<M: Payload>(sim: &mut Sim<M>, horizon: SimTime) -> bool {
    if !sim.queue.is_wheel() {
        return false;
    }
    match sim.queue.earliest_lower_bound() {
        Some(lb) if lb <= horizon => {}
        _ => return false, // nothing to run; the sequential loop is free
    }
    let Some(plan) = plan_partitions(sim) else {
        return false;
    };
    let l_min = plan.l_min;
    let policy = sim.window_policy;
    let nparts = plan.parts.len();
    let total = sim.actors.len();

    // ---- Session start: carve the engine into shards. ----
    let mut shards: Vec<Shard<M>> = plan
        .parts
        .iter()
        .enumerate()
        .map(|(p, nodes)| Shard {
            id: p as u32,
            nodes: nodes.clone(),
            owner: plan.owner.clone(),
            local: plan.local.clone(),
            node_count_total: total as u32,
            wheel: TimerWheel::new(),
            actors: Vec::with_capacity(nodes.len()),
            rngs: Vec::with_capacity(nodes.len()),
            halted: Vec::with_capacity(nodes.len()),
            crash_halted: Vec::with_capacity(nodes.len()),
            started: Vec::with_capacity(nodes.len()),
            epochs: Vec::with_capacity(nodes.len()),
            timers: Vec::with_capacity(nodes.len()),
            network: sim.network.clone(),
            faults: sim.faults.clone(),
            metrics: sim.metrics.fork_for_worker(),
            net_handles: sim.net_handles,
            node_handles: sim.node_handles.clone(),
            ops_scratch: Vec::new(),
            pop_horizon: SimTime::ZERO,
            log: Vec::new(),
            effects: Vec::new(),
            outbox: Vec::new(),
            staged_count: 0,
            log_cursor: 0,
            effect_cursor: 0,
            staged_final: Vec::new(),
        })
        .collect();
    for shard in shards.iter_mut() {
        for i in 0..shard.nodes.len() {
            let g = shard.nodes[i] as usize;
            shard.actors.push(sim.actors[g].take());
            shard.rngs.push(std::mem::replace(
                &mut sim.node_rngs[g],
                SmallRng::seed_from_u64(0),
            ));
            shard.halted.push(sim.halted[g]);
            shard.crash_halted.push(sim.crash_halted[g]);
            shard.started.push(sim.started[g]);
            shard.epochs.push(sim.epochs[g]);
            shard
                .timers
                .push(std::mem::replace(&mut sim.timers[g], TimerSlots::new()));
        }
    }
    // Distribute the pending event set; the engine keeps a fresh wheel that
    // teardown refills with whatever outlives the horizon.
    let mut old_queue = std::mem::replace(&mut sim.queue, crate::queue::EventQueue::wheel());
    while let Some(event) = old_queue.pop_next(SimTime::MAX) {
        let p = plan.owner[event.node.index()] as usize;
        shards[p].wheel.push(event);
    }

    // ---- Lockstep window loop. ----
    let mut counts = vec![0u64; nparts];
    let mut scratch: MergeScratch<M> = MergeScratch {
        tree: Vec::new(),
        keys: Vec::new(),
        winners: Vec::new(),
        routes: (0..nparts).map(|_| Vec::new()).collect(),
    };
    // FixedMinL stride state; unused (and untouched) under Adaptive.
    let mut w_start = SimTime::ZERO;
    let first_pop = match policy {
        WindowPolicy::Adaptive => adaptive_pop_horizon(&shards, &plan.out_min, horizon),
        WindowPolicy::FixedMinL => shards
            .iter()
            .filter_map(|s| s.wheel.earliest_lower_bound())
            .min()
            .filter(|&t| t <= horizon)
            .map(|first| {
                w_start = first;
                pop_horizon_for(first, l_min, horizon)
            }),
    };
    let (mut shards, harvests) = if let Some(mut pop_horizon) = first_pop {
        for shard in shards.iter_mut() {
            shard.pop_horizon = pop_horizon;
        }
        run_lockstep(
            shards,
            |_p, shard: &mut Shard<M>| shard.run_window(),
            |shards: &mut Vec<Shard<M>>| {
                merge_window(sim, shards, &mut counts, &mut scratch);
                if pop_horizon == horizon {
                    return false;
                }
                let next = match policy {
                    WindowPolicy::Adaptive => adaptive_pop_horizon(shards, &plan.out_min, horizon),
                    WindowPolicy::FixedMinL => shards
                        .iter()
                        .filter_map(|s| s.wheel.earliest_lower_bound())
                        .min()
                        .filter(|&lb| lb <= horizon)
                        .map(|lb| {
                            // Advance one stride, or jump straight to the
                            // next busy stretch when every wheel is idle
                            // past the window end.
                            let w_end = w_start + l_min;
                            w_start = lb.max(w_end);
                            pop_horizon_for(w_start, l_min, horizon)
                        }),
                };
                let Some(next) = next else { return false };
                pop_horizon = next;
                for shard in shards.iter_mut() {
                    shard.pop_horizon = pop_horizon;
                }
                true
            },
            // Harvested on the worker's own thread: payload-stats counters
            // are thread-local, so this is the only place they are visible.
            |_p, _shard: &mut Shard<M>| payload_stats::snapshot(),
        )
    } else {
        (shards, Vec::new())
    };

    // ---- Teardown: move everything back into the engine. ----
    for stats in harvests {
        payload_stats::add(stats);
    }
    for shard in shards.iter_mut() {
        for i in 0..shard.nodes.len() {
            let g = shard.nodes[i] as usize;
            sim.actors[g] = shard.actors[i].take();
            std::mem::swap(&mut sim.node_rngs[g], &mut shard.rngs[i]);
            sim.halted[g] = shard.halted[i];
            sim.crash_halted[g] = shard.crash_halted[i];
            sim.started[g] = shard.started[i];
            sim.epochs[g] = shard.epochs[i];
            std::mem::swap(&mut sim.timers[g], &mut shard.timers[i]);
            sim.network
                .adopt_link_state(NodeId(g as u32), &shard.network);
        }
        debug_assert!(shard.outbox.is_empty() && shard.log.is_empty());
        while let Some(event) = shard.wheel.pop_next(SimTime::MAX) {
            debug_assert!(
                event.seq < PROVISIONAL_BASE,
                "only finally-sequenced events may outlive a window"
            );
            sim.queue.push(event);
        }
        sim.metrics
            .absorb_worker(std::mem::replace(&mut shard.metrics, Metrics::new()));
    }
    sim.threads_used = nparts;
    sim.partition_events = counts;
    true
}

/// Driver-owned scratch reused across every barrier of a parallel session:
/// the loser-tree state and the per-destination outbox routing buffers.
/// Pooling these (plus the shards' own log/effect/outbox vectors, which are
/// cleared rather than dropped) makes the steady-state barrier
/// allocation-free.
struct MergeScratch<M> {
    /// `tree[i]`, `i >= 1`: the shard that *lost* the match at internal
    /// node `i`; `tree[0]`: the overall winner.
    tree: Vec<u32>,
    /// Per-shard resolved `(at_nanos, seq)` log-head key;
    /// `(u64::MAX, u64::MAX)` once the shard's log is exhausted.
    keys: Vec<(u64, u64)>,
    /// Build-time winner propagation (leaf-initialized, internal nodes
    /// filled bottom-up).
    winners: Vec<u32>,
    /// Outbox events grouped by destination shard, drained into the
    /// destination wheels once per barrier.
    routes: Vec<Vec<Event<M>>>,
}

/// Sentinel key for an exhausted shard log. Never collides with a real
/// entry: resolved sequence numbers stay below [`PROVISIONAL_BASE`].
const MERGE_DONE: (u64, u64) = (u64::MAX, u64::MAX);

/// Resolved `(at_nanos, seq)` of a shard's current log head. A provisional
/// head resolves through `staged_final`: its creator dispatched earlier in
/// the same shard's log (staging is a side effect of an earlier local
/// dispatch), so its final seq was already assigned by the time the head
/// can win the merge.
fn head_key<M: Payload>(shard: &Shard<M>) -> (u64, u64) {
    match shard.log.get(shard.log_cursor) {
        Some(e) => {
            let rseq = if e.seq >= PROVISIONAL_BASE {
                shard.staged_final[(e.seq - PROVISIONAL_BASE) as usize]
            } else {
                e.seq
            };
            (e.at.as_nanos(), rseq)
        }
        None => MERGE_DONE,
    }
}

/// The barrier: merges every partition's window log back into the global
/// `(time, seq)` order and replays each dispatch's global side effects —
/// digest fold, capture, trace ring, sequence assignment — exactly as the
/// sequential engine interleaved them. Afterwards routes outbox events
/// (now finally sequenced) to their owners' wheels for the next window.
///
/// The logs are already sorted (each shard dispatches its slice of the
/// global order in order), so the merge is a loser-tree k-way merge:
/// selecting each next event costs one leaf-to-root path of `log2(k)`
/// comparisons instead of a full `k`-way scan.
fn merge_window<M: Payload>(
    sim: &mut Sim<M>,
    shards: &mut [Shard<M>],
    counts: &mut [u64],
    scratch: &mut MergeScratch<M>,
) {
    sim.windows += 1;
    let k = shards.len();
    scratch.keys.clear();
    scratch.keys.extend(shards.iter().map(head_key));
    // Build the loser tree bottom-up. Leaf `j` (shard `j`) sits below
    // internal node `(k + j) / 2`; node 1 is the root; `tree[0]` holds the
    // winner of the whole bracket.
    scratch.tree.clear();
    scratch.tree.resize(k, 0);
    scratch.winners.clear();
    scratch.winners.resize(2 * k, 0);
    for j in 0..k {
        scratch.winners[k + j] = j as u32;
    }
    for i in (1..k).rev() {
        let a = scratch.winners[2 * i];
        let b = scratch.winners[2 * i + 1];
        let (w, l) = if scratch.keys[a as usize] <= scratch.keys[b as usize] {
            (a, b)
        } else {
            (b, a)
        };
        scratch.winners[i] = w;
        scratch.tree[i] = l;
    }
    scratch.tree[0] = if k == 1 { 0 } else { scratch.winners[1] };
    loop {
        let s = scratch.tree[0] as usize;
        let (at_nanos, rseq) = scratch.keys[s];
        if (at_nanos, rseq) == MERGE_DONE {
            break;
        }
        let at = SimTime::from_nanos(at_nanos);
        let shard = &mut shards[s];
        let e = shard.log[shard.log_cursor];
        shard.log_cursor += 1;
        counts[s] += 1;
        sim.events_processed += 1;
        sim.now = at;
        let canon = CanonEvent {
            at_nanos: at.as_nanos(),
            seq: rseq,
            node: e.node,
            kind: e.kind,
            from: e.from,
            bytes: e.bytes,
            tag: e.tag,
        };
        sim.digest.fold_event(&canon);
        if let Some(cap) = &mut sim.capture {
            cap.record(&canon);
        }
        if e.ran {
            if let Some(trace) = &mut sim.trace {
                let kind = match e.kind {
                    0 | 4 => TraceKind::Start,
                    1 => TraceKind::Deliver,
                    2 => TraceKind::Timer,
                    _ => unreachable!("crash events never pass the dispatch filters"),
                };
                trace.record(TraceEvent {
                    at,
                    seq: rseq,
                    node: NodeId(e.node),
                    kind,
                    from: e.from,
                    bytes: e.bytes as usize,
                    tag: e.tag,
                });
            }
        }
        for _ in 0..e.effects {
            let effect = shard.effects[shard.effect_cursor];
            shard.effect_cursor += 1;
            match effect {
                Effect::StagedSeq => {
                    let seq = sim.next_seq();
                    shard.staged_final.push(seq);
                }
                Effect::OutboxSeq(i) => {
                    shard.outbox[i as usize].seq = sim.next_seq();
                }
                Effect::Drop { from, to, bytes } => {
                    if let Some(trace) = &mut sim.trace {
                        trace.record(TraceEvent {
                            at,
                            seq: sim.seq,
                            node: to,
                            kind: TraceKind::Drop,
                            from: Some(from),
                            bytes,
                            tag: None,
                        });
                    }
                }
            }
        }
        // Re-seed the winner's leaf and replay its matches up to the root:
        // the running champion swaps with any stored loser that now beats
        // it. Strict `<` keeps ties (only the exhausted sentinel can tie —
        // resolved seqs are unique) with the incumbent, which is arbitrary
        // but consistent.
        scratch.keys[s] = head_key(&shards[s]);
        let mut cur = s as u32;
        let mut node = (k + s) / 2;
        while node >= 1 {
            if scratch.keys[scratch.tree[node] as usize] < scratch.keys[cur as usize] {
                std::mem::swap(&mut scratch.tree[node], &mut cur);
            }
            node /= 2;
        }
        scratch.tree[0] = cur;
    }
    for shard in shards.iter_mut() {
        debug_assert_eq!(shard.effect_cursor, shard.effects.len());
        shard.log.clear();
        shard.effects.clear();
        shard.log_cursor = 0;
        shard.effect_cursor = 0;
        shard.staged_final.clear();
        shard.staged_count = 0;
    }
    // Route the freshly sequenced outbox events, grouped per destination
    // shard so each wheel is touched once. (Insertion order is irrelevant:
    // the wheel pops by `(at, seq)` and sequence numbers are unique.)
    // Conservative guarantee: each event lands strictly beyond the window
    // that produced it, so no partition ever receives an event for a
    // window it already ran. Draining in place (instead of moving the
    // vectors) keeps the outbox and route allocations warm across windows.
    for shard in shards.iter_mut() {
        let mut outbox = std::mem::take(&mut shard.outbox);
        let pop_horizon = shard.pop_horizon;
        for event in outbox.drain(..) {
            debug_assert!(
                event.at > pop_horizon,
                "outbox event at {} must land strictly beyond the window ({pop_horizon})",
                event.at,
            );
            debug_assert!(event.seq < PROVISIONAL_BASE, "outbox seq left unpatched");
            let dest = shard.owner[event.node.index()] as usize;
            scratch.routes[dest].push(event);
        }
        shard.outbox = outbox;
    }
    for (dest, route) in scratch.routes.iter_mut().enumerate() {
        let wheel = &mut shards[dest].wheel;
        for event in route.drain(..) {
            wheel.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::TimerId;
    use crate::engine::Sim;
    use crate::faults::FaultPlan;
    use crate::net::LinkConfig;
    use proptest::prelude::*;
    use rand::Rng;

    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Msg {
        Ping(u64),
        Pong(u64),
        /// Zero wire size: no serialization delay, so its arrival time is
        /// exactly `send time + propagation` — the lookahead boundary.
        Instant,
    }

    impl Payload for Msg {
        fn wire_size(&self) -> usize {
            match self {
                Msg::Ping(_) | Msg::Pong(_) => 64,
                Msg::Instant => 0,
            }
        }
    }

    /// Randomized actor whose every decision comes from the node's
    /// deterministic RNG — identical behaviour under any scheduler that
    /// replays the same per-node event order.
    #[derive(Debug, Default)]
    struct Chaos {
        held: Vec<TimerId>,
        budget: u32,
    }

    impl Chaos {
        fn act(&mut self, ctx: &mut Context<'_, Msg>) {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            match ctx.rng().gen_range(0..6u32) {
                0 => {
                    let n = ctx.node_count();
                    let to = NodeId(ctx.rng().gen_range(0..n));
                    ctx.send(to, Msg::Ping(self.budget as u64));
                }
                1 => {
                    let all: Vec<NodeId> = (0..ctx.node_count()).map(NodeId).collect();
                    ctx.multicast(all, Msg::Pong(self.budget as u64));
                }
                2 | 3 => {
                    let delay = SimDuration::from_millis(ctx.rng().gen_range(1..400));
                    let id = ctx.set_timer(delay, TimerTag::of_kind(2));
                    if ctx.rng().gen_bool(0.5) {
                        self.held.push(id);
                    }
                }
                4 => {
                    if let Some(id) = self.held.pop() {
                        ctx.cancel_timer(id);
                    }
                }
                _ => {}
            }
        }
    }

    impl Actor<Msg> for Chaos {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            self.budget += 40;
            self.act(ctx);
            self.act(ctx);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _: NodeId, _: Msg) {
            self.act(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _: TimerTag) {
            self.act(ctx);
            self.act(ctx);
        }
    }

    fn chaos_sim(
        seed: u64,
        nodes: u32,
        crash_node: u32,
        regional: bool,
        jitter_ms: u64,
        omit: bool,
        threads: usize,
    ) -> Sim<Msg> {
        let model = if regional {
            LatencyModel::cn_wan()
        } else {
            LatencyModel::lan()
        };
        let net = Network::new(model, SimDuration::from_millis(jitter_ms));
        let mut sim = Sim::new(seed, net);
        sim.set_sim_threads(threads);
        sim.enable_trace(1 << 14);
        for i in 0..nodes {
            let region = Region(if regional { (i % 4) as u8 } else { 0 });
            // The last node joins late to exercise unstarted delivery.
            let start = if i == nodes - 1 {
                SimTime::from_millis(700)
            } else {
                SimTime::ZERO
            };
            sim.add_node(
                LinkConfig::paper_default().in_region(region),
                Box::<Chaos>::default(),
                start,
            );
        }
        let mut faults = FaultPlan::none();
        if omit {
            // Randomized omission on one sender: exercises the
            // counter-keyed fault draws alongside the crash churn.
            faults.omit_outgoing(NodeId((crash_node + 1) % nodes), 0.2);
        }
        // Two windows on one node: churn, not a single crash-recovery.
        faults
            .crash_for(
                NodeId(crash_node % nodes),
                SimTime::from_millis(500),
                SimTime::from_millis(1500),
            )
            .crash_for(
                NodeId(crash_node % nodes),
                SimTime::from_millis(2500),
                SimTime::from_millis(3000),
            );
        sim.set_faults(faults);
        // Regression (revive boundary): a deliver at exactly the revive tick
        // sequenced before the bookkeeping revive event must be processed,
        // identically at every thread count.
        sim.inject(
            NodeId(crash_node % nodes),
            NodeId((crash_node + 1) % nodes),
            Msg::Ping(77),
            SimTime::from_millis(1500),
        );
        sim
    }

    /// Asserts that two sims which ran the same workload are in
    /// byte-identical observable state.
    fn assert_equivalent(par: &Sim<Msg>, seq: &Sim<Msg>) {
        assert_eq!(par.events_processed(), seq.events_processed());
        assert_eq!(
            par.fingerprint(),
            seq.fingerprint(),
            "fingerprints diverged"
        );
        let (pt, st) = (par.trace().unwrap(), seq.trace().unwrap());
        assert_eq!(pt.total, st.total);
        assert_eq!(pt.deliveries, st.deliveries);
        assert_eq!(pt.timers, st.timers);
        assert_eq!(pt.drops, st.drops);
        assert_eq!(pt.delivered_bytes, st.delivered_bytes);
        let pe: Vec<_> = pt.events().collect();
        let se: Vec<_> = st.events().collect();
        assert_eq!(pe, se, "retained trace windows diverged");
        assert!(
            par.metrics().counters() == seq.metrics().counters(),
            "counter cells diverged"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn parallel_replays_sequential_exactly(
            seed in 0u64..1_000_000,
            nodes in 3u32..8,
            crash_node in 0u32..8,
            regional in proptest::bool::ANY,
            threads in 2usize..9,
        ) {
            let mut par = chaos_sim(seed, nodes, crash_node, regional, 0, false, threads);
            let mut seq = chaos_sim(seed, nodes, crash_node, regional, 0, false, 1);
            // Split the run so queue and RNG state carry across parallel
            // sessions (teardown/rebuild is exercised three times).
            let mut prev_events = 0;
            for h in [1u64, 2, 4] {
                par.run_until(SimTime::from_secs(h));
                seq.run_until(SimTime::from_secs(h));
                // Per-partition counts are per-session: they must sum to the
                // events this session dispatched.
                prop_assert_eq!(
                    par.partition_event_counts().iter().sum::<u64>(),
                    par.events_processed() - prev_events,
                    "partition counts must sum to the session total"
                );
                prev_events = par.events_processed();
                if h == 1 {
                    // The first second is always busy (start events, chaos
                    // budget); later sessions may drain the queue and fall
                    // back to the trivially sequential path.
                    prop_assert!(par.threads_used() > 1, "parallel engine never engaged");
                }
            }
            prop_assert_eq!(seq.threads_used(), 1);
            prop_assert_eq!(par.fingerprint(), seq.fingerprint(), "fingerprints diverged");
            prop_assert_eq!(par.events_processed(), seq.events_processed());
            let pe: Vec<_> = par.trace().unwrap().events().collect();
            let se: Vec<_> = seq.trace().unwrap().events().collect();
            prop_assert_eq!(pe, se, "retained trace windows diverged");
            prop_assert!(
                par.metrics().counters() == seq.metrics().counters(),
                "counter cells diverged"
            );
        }
    }

    /// A message dispatched at a window's first instant whose arrival is
    /// *exactly* `send + lookahead` lands on the lookahead horizon — the
    /// first nanosecond of the next window, the tightest legal landing
    /// spot for a cross-partition send. It must be routed at the barrier
    /// and dispatched there, never inside the window that produced it.
    #[test]
    fn cross_partition_send_on_the_lookahead_horizon() {
        #[derive(Debug)]
        struct Boundary;
        impl Actor<Msg> for Boundary {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                if ctx.node() == NodeId(0) {
                    ctx.send(NodeId(1), Msg::Instant);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _: Msg) {
                // Bounce once so the reply crosses back the other way.
                if ctx.node() == NodeId(1) {
                    ctx.send(from, Msg::Ping(1));
                }
            }
        }
        let build = |threads: usize| {
            let net = Network::new(LatencyModel::lan(), SimDuration::ZERO);
            let mut sim = Sim::new(7, net);
            sim.set_sim_threads(threads);
            sim.enable_trace(64);
            for _ in 0..2 {
                sim.add_node(
                    LinkConfig::paper_default(),
                    Box::new(Boundary),
                    SimTime::ZERO,
                );
            }
            sim.set_partition_hint(vec![vec![NodeId(0)], vec![NodeId(1)]]);
            sim.run_until(SimTime::from_secs(1));
            sim
        };
        let par = build(2);
        let seq = build(1);
        assert_eq!(par.threads_used(), 2);
        // The zero-size send departs at t=0 and arrives at exactly the
        // 25 ms lookahead: both deliveries must have happened.
        assert_eq!(par.trace().unwrap().deliveries, 2);
        assert_equivalent(&par, &seq);
    }

    /// An entire partition (a "zone") crashes mid-window and revives later:
    /// its workers keep popping (and discarding) traffic for the dead
    /// nodes, and the merged stream must still be byte-identical.
    #[test]
    fn fully_crashed_partition_mid_window() {
        let build = |threads: usize| {
            let mut sim = chaos_sim(11, 6, 0, false, 0, false, threads);
            sim.set_partition_hint(vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3), NodeId(4), NodeId(5)],
            ]);
            let mut faults = FaultPlan::none();
            for n in [3u32, 4, 5] {
                // 512.3 ms sits strictly inside a 25 ms-aligned window.
                faults.crash_for(
                    NodeId(n),
                    SimTime::from_nanos(512_300_000),
                    SimTime::from_millis(1200),
                );
            }
            sim.set_faults(faults);
            sim.run_until(SimTime::from_secs(2));
            sim
        };
        let par = build(2);
        let seq = build(1);
        assert_eq!(par.threads_used(), 2);
        assert_equivalent(&par, &seq);
    }

    /// The revive-boundary regression under partitioning: the crashed
    /// node's partition revives it inline when the deliver at the revive
    /// tick pops before the bookkeeping revive event, and the merged
    /// stream must still be byte-identical to the sequential engine's.
    #[test]
    fn deliver_at_revive_tick_is_thread_count_invariant() {
        let build = |threads: usize| {
            let mut sim = chaos_sim(17, 6, 2, false, 0, false, threads);
            sim.set_partition_hint(vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(3), NodeId(4), NodeId(5)],
            ]);
            sim.run_until(SimTime::from_secs(4));
            sim
        };
        let par = build(2);
        let eight = build(8);
        let seq = build(1);
        assert_eq!(par.threads_used(), 2);
        assert_equivalent(&par, &seq);
        assert_equivalent(&eight, &seq);
    }

    /// More threads than partitions: a hint that globs every node into one
    /// group leaves nothing to parallelize, so the engine must fall back
    /// to the sequential scheduler — and still match it exactly.
    #[test]
    fn single_partition_config_falls_back_to_sequential() {
        let build = |threads: usize, hint: bool| {
            let mut sim = chaos_sim(13, 4, 1, false, 0, false, threads);
            if hint {
                sim.set_partition_hint(vec![(0..4).map(NodeId).collect()]);
            }
            sim.run_until(SimTime::from_secs(2));
            sim
        };
        let par = build(8, true);
        let seq = build(1, false);
        assert_eq!(par.threads_used(), 1, "one partition cannot run parallel");
        assert!(par.partition_event_counts().is_empty());
        assert_equivalent(&par, &seq);
    }

    /// Region-grouped planning under the paper's WAN matrix: partitions
    /// never split a region (absent a hint), and the lookahead is the
    /// minimum off-diagonal latency of the matrix (10 ms for CN).
    #[test]
    fn planner_groups_regions_and_derives_lookahead() {
        let net = Network::new(LatencyModel::cn_wan(), SimDuration::ZERO);
        let mut sim: Sim<Msg> = Sim::new(3, net);
        sim.set_sim_threads(8);
        for i in 0..12u32 {
            sim.add_node(
                LinkConfig::paper_default().in_region(Region((i % 4) as u8)),
                Box::<Chaos>::default(),
                SimTime::ZERO,
            );
        }
        let plan = plan_partitions(&sim).expect("12 nodes over 4 regions must partition");
        assert_eq!(plan.parts.len(), 4, "one partition per region");
        // Row minima of the CN matrix (min off-diagonal entry per region).
        let expected_out_min = [16u64, 14, 10, 10];
        for (p, part) in plan.parts.iter().enumerate() {
            let r = sim.network().link_config(NodeId(part[0])).region;
            assert!(
                part.iter()
                    .all(|&g| sim.network().link_config(NodeId(g)).region == r),
                "regions must not be split across partitions"
            );
            assert_eq!(
                plan.out_min[p],
                SimDuration::from_millis(expected_out_min[r.0 as usize]),
                "outgoing lookahead for region {}",
                r.0
            );
        }
        assert_eq!(plan.l_min, SimDuration::from_millis(10));
    }

    /// Uniform model, free packing: lookahead is the uniform latency and
    /// nodes spread across all requested workers.
    #[test]
    fn planner_packs_uniform_nodes_freely() {
        let net = Network::new(LatencyModel::lan(), SimDuration::ZERO);
        let mut sim: Sim<Msg> = Sim::new(3, net);
        sim.set_sim_threads(3);
        for _ in 0..7 {
            sim.add_node(
                LinkConfig::paper_default(),
                Box::<Chaos>::default(),
                SimTime::ZERO,
            );
        }
        let plan = plan_partitions(&sim).expect("uniform nodes must partition");
        assert_eq!(plan.parts.len(), 3);
        assert_eq!(plan.l_min, SimDuration::from_millis(25));
        assert!(
            plan.out_min
                .iter()
                .all(|&d| d == SimDuration::from_millis(25)),
            "uniform model: every pairwise lookahead is the uniform latency"
        );
        let sizes: Vec<usize> = plan.parts.iter().map(Vec::len).collect();
        assert!(sizes.iter().all(|&s| s >= 2), "balanced packing: {sizes:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The adaptive window policy must produce the exact event stream
        /// of the fixed min-L stride — in fewer (or equal) barriers. The
        /// stepwise argument (each adaptive pop horizon dominates the
        /// fixed one from the same frontier) makes `<=` structural, so any
        /// violation is a real safety or bookkeeping bug.
        #[test]
        fn adaptive_matches_fixed_min_l_with_fewer_barriers(
            seed in 0u64..1_000_000,
            nodes in 3u32..8,
            crash_node in 0u32..8,
            regional in proptest::bool::ANY,
            threads in 2usize..9,
        ) {
            let run = |policy: WindowPolicy| {
                let mut sim = chaos_sim(seed, nodes, crash_node, regional, 0, false, threads);
                sim.set_window_policy(policy);
                sim.run_until(SimTime::from_secs(4));
                sim
            };
            let adaptive = run(WindowPolicy::Adaptive);
            let fixed = run(WindowPolicy::FixedMinL);
            prop_assert!(adaptive.threads_used() > 1, "adaptive run never engaged");
            prop_assert_eq!(
                adaptive.fingerprint(),
                fixed.fingerprint(),
                "window policy must not change the event stream"
            );
            prop_assert_eq!(adaptive.events_processed(), fixed.events_processed());
            prop_assert!(
                adaptive.metrics().counters() == fixed.metrics().counters(),
                "counter cells diverged across window policies"
            );
            prop_assert!(adaptive.windows_run() > 0, "no barriers counted");
            prop_assert!(
                adaptive.windows_run() <= fixed.windows_run(),
                "adaptive took {} barriers, fixed min-L {}",
                adaptive.windows_run(),
                fixed.windows_run()
            );
        }

        /// Jittered (and randomly omitting) runs no longer fall back to the
        /// sequential engine: the counter-keyed per-link draw streams must
        /// make them bit-identical at every thread count.
        #[test]
        fn jittered_runs_are_thread_count_invariant(
            seed in 0u64..1_000_000,
            nodes in 3u32..8,
            crash_node in 0u32..8,
            jitter_ms in 1u64..10,
            omit in proptest::bool::ANY,
        ) {
            let run = |threads: usize| {
                let mut sim = chaos_sim(seed, nodes, crash_node, false, jitter_ms, omit, threads);
                sim.run_until(SimTime::from_secs(3));
                sim
            };
            let seq = run(1);
            let two = run(2);
            let eight = run(8);
            prop_assert_eq!(seq.threads_used(), 1);
            prop_assert!(
                two.threads_used() > 1,
                "a jittered run must engage the parallel engine"
            );
            for par in [&two, &eight] {
                prop_assert_eq!(
                    par.fingerprint(),
                    seq.fingerprint(),
                    "jittered fingerprints diverged from sequential"
                );
                prop_assert_eq!(par.events_processed(), seq.events_processed());
                let pe: Vec<_> = par.trace().unwrap().events().collect();
                let se: Vec<_> = seq.trace().unwrap().events().collect();
                prop_assert_eq!(pe, se, "retained trace windows diverged");
                prop_assert!(
                    par.metrics().counters() == seq.metrics().counters(),
                    "counter cells diverged"
                );
            }
        }
    }
}
