//! Dispatch profiling: per-actor-kind × per-event-kind event counts and
//! wall-time attribution for the engine's dispatch loop.
//!
//! Profiling is optional ([`crate::engine::Sim::enable_profiling`] or
//! `PREDIS_PROFILE=1`); when off the dispatch loop pays exactly one branch.
//! When on, the engine takes one `Instant` reading per event and charges the
//! elapsed wall time since the previous reading to the cell of the actor
//! kind that just ran — so a cell absorbs the actor callback *and* the
//! queue/bookkeeping work that followed it, which is what makes the
//! attribution cover ≥95% of the loop instead of just callback bodies.
//!
//! Actor kinds are interned to dense indices at [`crate::engine::Sim::add_node`]
//! time (the PR 5 handle trick): the hot path indexes a `Vec` of cells by
//! `(kind_index, event_bucket)` and never touches a `HashMap` or a string.

use predis_telemetry::{ProfileEntry, RunReport};

/// Event buckets a profiled dispatch is charged to.
pub const PROFILE_EVENTS: [&str; 4] = ["deliver", "timer", "start", "other"];

/// Bucket for message deliveries.
pub(crate) const BUCKET_DELIVER: usize = 0;
/// Bucket for timer firings.
pub(crate) const BUCKET_TIMER: usize = 1;
/// Bucket for `on_start` dispatches (including revives).
pub(crate) const BUCKET_START: usize = 2;
/// Bucket for everything else (crash processing, filtered events).
pub(crate) const BUCKET_OTHER: usize = 3;

#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    count: u64,
    ns: u64,
}

/// Dense per-actor-kind × per-event-kind dispatch accounting.
#[derive(Debug, Default)]
pub struct DispatchProfile {
    /// `cells[kind_index]` = one [`Cell`] per entry of [`PROFILE_EVENTS`].
    cells: Vec<[Cell; 4]>,
    run_ns: u64,
}

impl DispatchProfile {
    /// Charges `ns` of wall time (and one event) to a cell, growing the
    /// dense table on first sight of a kind index.
    #[inline]
    pub(crate) fn record(&mut self, kind_index: usize, bucket: usize, ns: u64) {
        if kind_index >= self.cells.len() {
            self.cells.resize(kind_index + 1, [Cell::default(); 4]);
        }
        let cell = &mut self.cells[kind_index][bucket];
        cell.count += 1;
        cell.ns += ns;
    }

    /// Adds wall time spent in the dispatch loop itself.
    pub(crate) fn add_run_ns(&mut self, ns: u64) {
        self.run_ns += ns;
    }

    /// Total wall time of the profiled dispatch loop, in nanoseconds.
    pub fn run_ns(&self) -> u64 {
        self.run_ns
    }

    /// Total events charged across all cells.
    pub fn events(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.count)
            .sum()
    }

    /// Total wall time attributed across all cells, in nanoseconds.
    pub fn attributed_ns(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| row.iter())
            .map(|c| c.ns)
            .sum()
    }

    /// Renders the non-empty cells as report entries, in deterministic
    /// `(kind_index, event_bucket)` order. `kind_names[i]` names kind `i`.
    pub fn entries(&self, kind_names: &[String]) -> Vec<ProfileEntry> {
        let mut out = Vec::new();
        for (i, row) in self.cells.iter().enumerate() {
            let actor = kind_names.get(i).map(String::as_str).unwrap_or("<unknown>");
            for (b, cell) in row.iter().enumerate() {
                if cell.count > 0 {
                    out.push(ProfileEntry {
                        actor: actor.to_string(),
                        event: PROFILE_EVENTS[b].to_string(),
                        count: cell.count,
                        ns: cell.ns,
                    });
                }
            }
        }
        out
    }

    /// Stamps the profile block onto a report.
    pub fn stamp(&self, kind_names: &[String], report: &mut RunReport) {
        report.profile = self.entries(kind_names);
        report.profile_run_ns = self.run_ns;
    }
}

/// Strips module paths from a type name, keeping generic structure:
/// `predis_sim::actor::ActorOf<predis::consensus::PbftNode<...>, ...>` →
/// `ActorOf<PbftNode<...>, ...>`.
pub fn short_type_name(full: &str) -> String {
    let mut out = String::with_capacity(full.len());
    let mut ident = String::new();
    for c in full.chars() {
        if c.is_alphanumeric() || c == '_' || c == ':' {
            ident.push(c);
        } else {
            if !ident.is_empty() {
                out.push_str(ident.rsplit("::").next().unwrap_or(&ident));
                ident.clear();
            }
            out.push(c);
        }
    }
    if !ident.is_empty() {
        out.push_str(ident.rsplit("::").next().unwrap_or(&ident));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_type_name_strips_paths_and_keeps_generics() {
        assert_eq!(short_type_name("alpha::beta::Gamma"), "Gamma");
        assert_eq!(
            short_type_name("a::ActorOf<b::c::PbftNode<d::PredisPlane>, e::ConsMsg>"),
            "ActorOf<PbftNode<PredisPlane>, ConsMsg>"
        );
        assert_eq!(short_type_name("Plain"), "Plain");
        assert_eq!(short_type_name("x::y::Pair<u64, u64>"), "Pair<u64, u64>");
    }

    #[test]
    fn cells_accumulate_and_render_in_order() {
        let mut p = DispatchProfile::default();
        p.record(1, BUCKET_TIMER, 50);
        p.record(0, BUCKET_DELIVER, 100);
        p.record(0, BUCKET_DELIVER, 25);
        p.record(0, BUCKET_START, 10);
        p.add_run_ns(500);
        assert_eq!(p.events(), 4);
        assert_eq!(p.attributed_ns(), 185);
        assert_eq!(p.run_ns(), 500);
        let names = vec!["A".to_string(), "B".to_string()];
        let entries = p.entries(&names);
        assert_eq!(entries.len(), 3);
        assert_eq!(
            (entries[0].actor.as_str(), entries[0].event.as_str()),
            ("A", "deliver")
        );
        assert_eq!((entries[0].count, entries[0].ns), (2, 125));
        assert_eq!(
            (entries[1].actor.as_str(), entries[1].event.as_str()),
            ("A", "start")
        );
        assert_eq!(
            (entries[2].actor.as_str(), entries[2].event.as_str()),
            ("B", "timer")
        );
        let mut report = RunReport::new("p");
        p.stamp(&names, &mut report);
        assert_eq!(report.profile.len(), 3);
        assert_eq!(report.profile_run_ns, 500);
        assert_eq!(report.profile_attributed_ns(), 185);
    }

    #[test]
    fn other_bucket_exists_for_filtered_events() {
        let mut p = DispatchProfile::default();
        p.record(0, BUCKET_OTHER, 7);
        let entries = p.entries(&["A".to_string()]);
        assert_eq!(entries[0].event, "other");
    }
}
