//! The engine's future-event set: a hierarchical timer wheel plus the
//! generation-counted timer-slot table.
//!
//! The discrete-event loop pops millions of events per simulated second,
//! and a binary heap pays `O(log n)` comparisons on every one of them. A
//! hashed hierarchical timer wheel (Varghese & Lauck) makes both `push`
//! and `pop` O(1) amortized: near-future events land in fine-grained
//! buckets (one tick ≈ 262 µs, a fraction of the LAN link latency),
//! farther events in exponentially coarser wheels that cascade down as
//! the cursor reaches them, and anything beyond the wheel horizon
//! (~20 min) falls back to a small binary heap.
//!
//! Ordering is preserved exactly: events inside one tick are drained
//! through a per-tick heap ordered by `(time, seq)`, coarser buckets are
//! re-scattered before anything in them is popped, and the cursor only
//! ever advances to the earliest occupied bucket — so the wheel replays
//! the same total `(time, seq)` order as the old global heap,
//! event-for-event.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::actor::{NodeId, TimerId, TimerTag};
use crate::time::SimTime;

/// What happens when an event is dispatched to its node.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// The node joins the simulation and its actor's `on_start` runs.
    Start,
    /// A message arrives.
    Deliver {
        /// Sending node.
        from: NodeId,
        /// The message itself.
        msg: M,
        /// Wire size memoized when the message was sent; delivery metrics
        /// and the trace read it instead of re-walking the payload.
        bytes: usize,
    },
    /// An armed timer fires.
    Timer {
        /// Slot-and-generation handle minted by [`TimerSlots::arm`].
        id: TimerId,
        /// Actor-chosen discriminator passed back to `on_timer`.
        tag: TimerTag,
        /// Node epoch at arming time; a revival bumps the epoch and
        /// orphans older timers.
        epoch: u32,
    },
    /// The node fail-stops (from the fault plan).
    Crash,
    /// The node recovers from a crash window.
    Revive,
}

/// A scheduled event, totally ordered by `(at, seq)`.
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) node: NodeId,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// log2 of the tick width in nanoseconds: one tick ≈ 2.1 ms. Level 0 then
/// spans 64 ticks ≈ 134 ms — wider than any one LAN/WAN hop — so nearly
/// every delivery files straight into a level-0 bucket (one placement, no
/// cascade) and the per-tick ordering heap stays small (only events within
/// one 2 ms window ever share it).
const TICK_BITS: u32 = 21;
/// log2 of the slots per wheel level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; ticks differing only in the low `SLOT_BITS * LEVELS`
/// bits are wheel-resident, everything farther goes to the fallback heap.
const LEVELS: usize = 4;
/// Total tick bits covered by the wheels (horizon ≈ 2^45 ns ≈ 9.8 h).
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_BITS
}

/// Hierarchical timer wheel over [`Event`]s. See the module docs for the
/// layout and the ordering argument.
pub(crate) struct TimerWheel<M> {
    /// Tick of the bucket currently being drained. Invariant: no stored
    /// event has a tick below this, and `cur_tick <= tick_of(now)`.
    cur_tick: u64,
    /// Events of the current tick, ordered exactly by `(at, seq)`.
    current: BinaryHeap<Reverse<Event<M>>>,
    /// `LEVELS * SLOTS` buckets, flattened level-major. A level-`l` slot
    /// groups events whose tick agrees with the cursor above digit `l`
    /// and first differs at digit `l`.
    slots: Vec<Vec<Event<M>>>,
    /// Per-level occupancy bitmap (bit = slot has events).
    occupied: [u64; LEVELS],
    /// Events beyond the wheel horizon.
    far: BinaryHeap<Reverse<Event<M>>>,
    /// Reused buffer for cascading a coarse bucket (keeps the drain
    /// allocation-free once warm).
    cascade_scratch: Vec<Event<M>>,
    len: usize,
}

impl<M> TimerWheel<M> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            cur_tick: 0,
            current: BinaryHeap::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            far: BinaryHeap::new(),
            cascade_scratch: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, event: Event<M>) {
        self.len += 1;
        self.place(event);
    }

    /// Files an event into the structure matching its distance from the
    /// cursor. Does not touch `len` (cascades re-place events).
    fn place(&mut self, event: Event<M>) {
        debug_assert!(
            tick_of(event.at) >= self.cur_tick,
            "event scheduled behind the wheel cursor"
        );
        // Clamp defensively: a past-time push (impossible through the
        // engine, which asserts `at >= now`) degrades to "fires next",
        // which is also what the old global heap did.
        let tick = tick_of(event.at).max(self.cur_tick);
        let diff = tick ^ self.cur_tick;
        if diff == 0 {
            self.current.push(Reverse(event));
            return;
        }
        // Highest differing digit picks the level: the event's digits
        // above it match the cursor, so the bucket needs no further
        // qualification and is drained before the cursor's digit at that
        // level can pass it.
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        if level >= LEVELS {
            self.far.push(Reverse(event));
            return;
        }
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(event);
        self.occupied[level] |= 1 << slot;
    }

    /// A cheap lower bound on the earliest stored event's time, or `None`
    /// when empty. The current tick's heap and the far heap report exact
    /// head times; wheel buckets report their base tick (every event in a
    /// bucket fires at or after it), so the bound may undershoot by at most
    /// one bucket span. The parallel engine uses this to skip idle windows
    /// without draining anything.
    pub(crate) fn earliest_lower_bound(&self) -> Option<SimTime> {
        let mut best: Option<u64> = None;
        let mut fold = |nanos: u64| {
            if best.is_none_or(|b| nanos < b) {
                best = Some(nanos);
            }
        };
        if let Some(Reverse(head)) = self.current.peek() {
            fold(head.at.as_nanos());
        }
        for level in 0..LEVELS {
            let digit = (self.cur_tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1);
            let ahead = self.occupied[level] & ((!0u64 << digit) << 1);
            if ahead == 0 {
                continue;
            }
            let slot = u64::from(ahead.trailing_zeros());
            let width = SLOT_BITS * level as u32;
            let span = (1u64 << (width + SLOT_BITS)) - 1;
            let base = (self.cur_tick & !span) | (slot << width);
            fold(base << TICK_BITS);
        }
        if let Some(Reverse(head)) = self.far.peek() {
            fold(head.at.as_nanos());
        }
        best.map(SimTime::from_nanos)
    }

    /// The *exact* earliest stored event time, or `None` when empty.
    ///
    /// Costs one scan of the first-ahead bucket per level (the earliest
    /// event always lives in its level's first occupied slot: any earlier
    /// slot of the same level holds only strictly earlier ticks). The
    /// parallel engine's adaptive window policy calls this at barriers so
    /// idle jumps land on the true next event instead of crawling from a
    /// coarse bucket base in lookahead-sized steps.
    pub(crate) fn earliest_event_time(&self) -> Option<SimTime> {
        let mut best: Option<u64> = None;
        let mut fold = |nanos: u64| {
            if best.is_none_or(|b| nanos < b) {
                best = Some(nanos);
            }
        };
        if let Some(Reverse(head)) = self.current.peek() {
            fold(head.at.as_nanos());
        }
        for level in 0..LEVELS {
            let digit = (self.cur_tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1);
            let ahead = self.occupied[level] & ((!0u64 << digit) << 1);
            if ahead == 0 {
                continue;
            }
            let slot = ahead.trailing_zeros() as usize;
            for event in &self.slots[level * SLOTS + slot] {
                fold(event.at.as_nanos());
            }
        }
        if let Some(Reverse(head)) = self.far.peek() {
            fold(head.at.as_nanos());
        }
        best.map(SimTime::from_nanos)
    }

    /// Pops the next event with `at <= horizon`, in exact `(at, seq)`
    /// order, or `None` (leaving the cursor untouched past the horizon).
    pub(crate) fn pop_next(&mut self, horizon: SimTime) -> Option<Event<M>> {
        loop {
            // 1. The current tick's heap replays exact order.
            if let Some(Reverse(head)) = self.current.peek() {
                if head.at > horizon {
                    return None;
                }
                let Reverse(event) = self.current.pop().expect("peeked");
                self.len -= 1;
                return Some(event);
            }

            // 2. Earliest occupied bucket strictly ahead of the cursor.
            //    At each level only slots above the cursor's digit can be
            //    occupied (lower digits would have placed at a finer
            //    level), and the finest such bucket is the nearest.
            let mut best: Option<(u64, usize)> = None;
            for level in 0..LEVELS {
                let digit = (self.cur_tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1);
                let ahead = self.occupied[level] & ((!0u64 << digit) << 1);
                if ahead == 0 {
                    continue;
                }
                let slot = u64::from(ahead.trailing_zeros());
                let width = SLOT_BITS * level as u32;
                let span = (1u64 << (width + SLOT_BITS)) - 1;
                let base = (self.cur_tick & !span) | (slot << width);
                if best.is_none_or(|(b, _)| base < b) {
                    best = Some((base, level));
                }
            }

            let Some((base, level)) = best else {
                // 3. Wheels empty — pull the far heap's front window in.
                let head_at = match self.far.peek() {
                    Some(Reverse(head)) => head.at,
                    None => return None,
                };
                if head_at > horizon {
                    return None;
                }
                self.cur_tick = tick_of(head_at);
                while let Some(Reverse(head)) = self.far.peek() {
                    if (tick_of(head.at) ^ self.cur_tick) >> WHEEL_BITS != 0 {
                        break;
                    }
                    let Reverse(event) = self.far.pop().expect("peeked");
                    self.place(event);
                }
                continue;
            };

            // Nothing in the bucket can fire before its base tick; if even
            // that is past the horizon, stop without advancing the cursor
            // (keeps `cur_tick <= tick_of(now)` for future pushes).
            if base << TICK_BITS > horizon.as_nanos() {
                return None;
            }
            self.cur_tick = base;
            let digit = ((base >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.occupied[level] &= !(1u64 << digit);
            // Drain the bucket without giving up anyone's capacity: the
            // slot Vec, the current heap's buffer, and the cascade scratch
            // are all reused, so steady-state draining never allocates.
            if level == 0 {
                // A level-0 bucket holds exactly one tick; heapify it as
                // the new current tick (O(n)).
                debug_assert!(self.current.is_empty());
                let mut buf = std::mem::take(&mut self.current).into_vec();
                buf.clear();
                buf.extend(self.slots[digit].drain(..).map(Reverse));
                self.current = BinaryHeap::from(buf);
            } else {
                // Coarser bucket: re-scatter relative to the new cursor.
                let mut scratch = std::mem::take(&mut self.cascade_scratch);
                scratch.append(&mut self.slots[level * SLOTS + digit]);
                for event in scratch.drain(..) {
                    self.place(event);
                }
                self.cascade_scratch = scratch;
            }
        }
    }
}

/// The old scheduler — one global `(at, seq)` heap — kept as the ordering
/// oracle for differential tests.
#[cfg(test)]
pub(crate) struct ClassicHeap<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
}

#[cfg(test)]
impl<M> ClassicHeap<M> {
    pub(crate) fn new() -> Self {
        ClassicHeap {
            heap: BinaryHeap::new(),
        }
    }

    pub(crate) fn push(&mut self, event: Event<M>) {
        self.heap.push(Reverse(event));
    }

    pub(crate) fn pop_next(&mut self, horizon: SimTime) -> Option<Event<M>> {
        match self.heap.peek() {
            Some(Reverse(head)) if head.at <= horizon => Some(self.heap.pop().expect("peeked").0),
            _ => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The engine's pluggable future-event set. Production always runs the
/// wheel; the classic heap exists so differential tests can replay the
/// same workload under both and demand identical traces.
pub(crate) enum EventQueue<M> {
    Wheel(TimerWheel<M>),
    #[cfg(test)]
    Classic(ClassicHeap<M>),
}

impl<M> EventQueue<M> {
    pub(crate) fn wheel() -> Self {
        EventQueue::Wheel(TimerWheel::new())
    }

    #[cfg(test)]
    pub(crate) fn classic() -> Self {
        EventQueue::Classic(ClassicHeap::new())
    }

    #[inline]
    pub(crate) fn push(&mut self, event: Event<M>) {
        match self {
            EventQueue::Wheel(w) => w.push(event),
            #[cfg(test)]
            EventQueue::Classic(h) => h.push(event),
        }
    }

    #[inline]
    pub(crate) fn pop_next(&mut self, horizon: SimTime) -> Option<Event<M>> {
        match self {
            EventQueue::Wheel(w) => w.pop_next(horizon),
            #[cfg(test)]
            EventQueue::Classic(h) => h.pop_next(horizon),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            #[cfg(test)]
            EventQueue::Classic(h) => h.len(),
        }
    }

    /// Whether this queue is the production wheel. The parallel engine
    /// rebuilds the queue from per-shard wheels at session teardown, so it
    /// only engages when the run started on a wheel (the classic heap is a
    /// test-only ordering oracle and must stay a heap end to end).
    pub(crate) fn is_wheel(&self) -> bool {
        match self {
            EventQueue::Wheel(_) => true,
            #[cfg(test)]
            EventQueue::Classic(_) => false,
        }
    }

    /// See [`TimerWheel::earliest_lower_bound`].
    pub(crate) fn earliest_lower_bound(&self) -> Option<SimTime> {
        match self {
            EventQueue::Wheel(w) => w.earliest_lower_bound(),
            #[cfg(test)]
            EventQueue::Classic(h) => h.heap.peek().map(|Reverse(e)| e.at),
        }
    }
}

/// Timer liveness via slot generations instead of a tombstone set.
///
/// `arm` hands out `TimerId`s packing `(generation << 32) | slot`;
/// `resolve` (called when the timer event pops) and `cancel` both bump
/// the slot's generation, so whichever happens second sees a stale id and
/// becomes a no-op. Slots recycle through a free list, so a run's live
/// timer count — not its total timer count — bounds the memory, and
/// cancelled timers of crashed or revived nodes cost nothing beyond
/// their slot flip. (The old `HashSet<TimerId>` tombstones leaked
/// whenever a cancelled timer's pop was swallowed by a halted node.)
#[derive(Debug, Default)]
pub(crate) struct TimerSlots {
    /// Current generation per slot; ids carrying an older one are dead.
    gens: Vec<u32>,
    /// Slots available for re-arming.
    free: Vec<u32>,
}

impl TimerSlots {
    pub(crate) fn new() -> Self {
        TimerSlots::default()
    }

    /// Mints a live timer id.
    pub(crate) fn arm(&mut self) -> TimerId {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.gens.push(0);
                self.gens.len() - 1
            }
        };
        TimerId((u64::from(self.gens[slot]) << 32) | slot as u64)
    }

    /// Consumes the id: true if it was still live (the slot is freed for
    /// reuse either way once the generation matches).
    pub(crate) fn resolve(&mut self, id: TimerId) -> bool {
        let slot = (id.0 & u64::from(u32::MAX)) as usize;
        let gen = (id.0 >> 32) as u32;
        match self.gens.get_mut(slot) {
            Some(g) if *g == gen => {
                *g = g.wrapping_add(1);
                self.free.push(slot as u32);
                true
            }
            _ => false,
        }
    }

    /// Cancels a timer; a later `resolve` of the same id returns false.
    pub(crate) fn cancel(&mut self, id: TimerId) {
        self.resolve(id);
    }

    /// Slots ever allocated (== peak live timers), for leak assertions.
    #[cfg(test)]
    pub(crate) fn slot_count(&self) -> usize {
        self.gens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn ev(at_nanos: u64, seq: u64) -> Event<()> {
        Event {
            at: SimTime::from_nanos(at_nanos),
            seq,
            node: NodeId(0),
            kind: EventKind::Start,
        }
    }

    /// Pushes the same random stream into the wheel and the classic heap,
    /// interleaving pops at random horizons, and demands the exact same
    /// `(at, seq)` pop order.
    fn differential(seed: u64, spread_bits: u32) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut wheel = TimerWheel::new();
        let mut heap = ClassicHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _round in 0..200 {
            // A burst of pushes at `now + random offset` (offsets collide
            // across ticks, levels, and the far horizon).
            for _ in 0..rng.gen_range(0..8u32) {
                let at = now + rng.gen_range(0..(1u64 << spread_bits));
                wheel.push(ev(at, seq));
                heap.push(ev(at, seq));
                seq += 1;
            }
            // Drain up to a horizon a bit past `now`.
            let horizon = SimTime::from_nanos(now + rng.gen_range(0..(1u64 << spread_bits)));
            loop {
                let a = wheel.pop_next(horizon);
                let b = heap.pop_next(horizon);
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => {
                        assert_eq!((x.at, x.seq), (y.at, y.seq), "pop order diverged");
                        now = now.max(x.at.as_nanos());
                    }
                    (a, b) => panic!(
                        "queues disagree on emptiness: wheel={:?} heap={:?}",
                        a.map(|e| (e.at, e.seq)),
                        b.map(|e| (e.at, e.seq))
                    ),
                }
            }
            now = now.max(horizon.as_nanos());
            assert_eq!(wheel.len(), heap.len());
        }
    }

    #[test]
    fn wheel_matches_heap_within_level0() {
        differential(1, TICK_BITS + 2);
    }

    #[test]
    fn wheel_matches_heap_across_levels() {
        differential(2, TICK_BITS + WHEEL_BITS - 4);
    }

    #[test]
    fn wheel_matches_heap_including_far_heap() {
        // Offsets beyond the wheel horizon exercise the far fallback.
        differential(3, TICK_BITS + WHEEL_BITS + 6);
    }

    /// The exact earliest-event query must agree with the true pending
    /// minimum at every point of a randomized push/pop interleaving —
    /// including when events sit mid-bucket in coarse levels, where the
    /// cheap lower bound undershoots.
    #[test]
    fn earliest_event_time_matches_true_minimum() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut wheel = TimerWheel::new();
        let mut heap = ClassicHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..200 {
            for _ in 0..rng.gen_range(0..6u32) {
                let at = now + rng.gen_range(0..(1u64 << (TICK_BITS + WHEEL_BITS - 2)));
                wheel.push(ev(at, seq));
                heap.push(ev(at, seq));
                seq += 1;
            }
            let expect = heap.heap.peek().map(|Reverse(e)| e.at);
            assert_eq!(wheel.earliest_event_time(), expect);
            if let Some(at) = expect {
                assert!(wheel.earliest_lower_bound().unwrap() <= at);
            }
            let horizon = SimTime::from_nanos(now + rng.gen_range(0..(1u64 << 28)));
            while let Some(e) = wheel.pop_next(horizon) {
                let h = heap.pop_next(horizon).expect("heap matches wheel");
                assert_eq!((e.at, e.seq), (h.at, h.seq));
                now = now.max(e.at.as_nanos());
            }
            assert!(heap.pop_next(horizon).is_none());
            now = now.max(horizon.as_nanos());
        }
    }

    #[test]
    fn seq_breaks_ties_within_one_tick() {
        let mut wheel = TimerWheel::new();
        for seq in [5u64, 1, 3, 2, 4] {
            wheel.push(ev(100, seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| wheel.pop_next(SimTime::MAX))
            .map(|e| e.seq)
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn horizon_is_inclusive_and_cursor_stays_put() {
        let mut wheel = TimerWheel::new();
        wheel.push(ev(1 << 30, 0));
        assert!(wheel.pop_next(SimTime::from_nanos((1 << 30) - 1)).is_none());
        // The failed pop must not have advanced the cursor: a nearer event
        // pushed afterwards still pops first.
        wheel.push(ev(1 << 20, 1));
        let e = wheel.pop_next(SimTime::from_nanos(1 << 30)).unwrap();
        assert_eq!(e.seq, 1);
        assert_eq!(wheel.pop_next(SimTime::from_nanos(1 << 30)).unwrap().seq, 0);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn pushes_during_drain_of_same_tick_stay_ordered() {
        let mut wheel = TimerWheel::new();
        wheel.push(ev(100, 0));
        wheel.push(ev(200, 1));
        assert_eq!(wheel.pop_next(SimTime::MAX).unwrap().seq, 0);
        // Same tick as the event just popped, later seq.
        wheel.push(ev(150, 2));
        assert_eq!(wheel.pop_next(SimTime::MAX).unwrap().seq, 2);
        assert_eq!(wheel.pop_next(SimTime::MAX).unwrap().seq, 1);
    }

    #[test]
    fn timer_slots_recycle_and_invalidate() {
        let mut slots = TimerSlots::new();
        let a = slots.arm();
        let b = slots.arm();
        assert_ne!(a, b);
        assert!(slots.resolve(a), "first resolve sees a live timer");
        assert!(!slots.resolve(a), "second resolve of the same id is dead");
        slots.cancel(b);
        assert!(!slots.resolve(b), "cancelled timer never fires");
        // The freed slots are reused with a fresh generation.
        let c = slots.arm();
        let d = slots.arm();
        assert_eq!(slots.slot_count(), 2);
        assert_ne!(c, a);
        assert_ne!(d, b);
        assert!(slots.resolve(c));
        assert!(slots.resolve(d));
    }

    #[test]
    fn timer_slots_growth_is_bounded_by_live_timers() {
        let mut slots = TimerSlots::new();
        for _ in 0..10_000 {
            let id = slots.arm();
            slots.cancel(id);
        }
        assert_eq!(slots.slot_count(), 1, "arm/cancel churn reuses one slot");
    }

    #[test]
    fn fabricated_timer_ids_are_dead() {
        let mut slots = TimerSlots::new();
        assert!(!slots.resolve(TimerId(42)), "unknown slot");
        let real = slots.arm();
        assert!(!slots.resolve(TimerId(real.0 | (7 << 32))), "wrong gen");
        assert!(slots.resolve(real));
    }
}
