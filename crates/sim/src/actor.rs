//! Actors: the programming model for simulated nodes.
//!
//! A simulated node is an [`Actor`]: a state machine that reacts to message
//! deliveries and timer expirations through a [`Context`] that lets it send
//! messages, arm timers and record metrics. Protocol logic is usually written
//! as a [`ProtocolCore`] over its own message type `T` and lifted into an
//! [`Actor`] over any envelope message `M` that can carry `T` (see
//! [`Codec`]); this is how consensus-layer and network-layer protocols are
//! composed into one simulation.

use std::fmt::Debug;

use rand::rngs::SmallRng;

use crate::metrics::Metrics;
use crate::queue::TimerSlots;
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated node; indexes into the simulation's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A timer handle, used to cancel a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// An opaque per-protocol timer tag delivered back on expiry.
///
/// Protocols namespace their tags with distinct `kind` values; `a` and `b`
/// carry protocol-specific payloads (view numbers, heights, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerTag {
    /// Protocol-chosen discriminator for the timer's purpose.
    pub kind: u32,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl TimerTag {
    /// Creates a tag with payload words set to zero.
    pub const fn of_kind(kind: u32) -> Self {
        TimerTag { kind, a: 0, b: 0 }
    }

    /// Creates a tag with one payload word.
    pub const fn with_a(kind: u32, a: u64) -> Self {
        TimerTag { kind, a, b: 0 }
    }

    /// Creates a tag with both payload words.
    pub const fn new(kind: u32, a: u64, b: u64) -> Self {
        TimerTag { kind, a, b }
    }
}

/// A message payload that can travel through the simulated network.
///
/// The simulator never serializes payloads; it only needs their wire size to
/// model bandwidth. Implementations should report the size the message would
/// have on a real wire (including protocol framing they care about).
///
/// Payloads are `Send` because the parallel engine moves in-flight events
/// between partition workers at window barriers; payload types are plain
/// data (or `Arc`-shared immutable data), so this costs nothing in practice.
pub trait Payload: Clone + Debug + Send + 'static {
    /// Size of this message on the wire, in bytes.
    fn wire_size(&self) -> usize;
}

/// Embeds a protocol message type `T` in an envelope message type `Self`.
///
/// This is what lets a protocol core written against its own message enum be
/// reused inside a larger simulation whose nodes speak a union of several
/// protocols (e.g. consensus messages *and* network-layer dissemination
/// messages).
pub trait Codec<T>: Payload {
    /// Wraps a protocol message into the envelope.
    fn wrap(msg: T) -> Self;
    /// Extracts the protocol message, or returns `None` if the envelope
    /// carries a different protocol.
    fn unwrap(self) -> Option<T>;
}

/// Every payload trivially embeds itself.
impl<T: Payload> Codec<T> for T {
    fn wrap(msg: T) -> Self {
        msg
    }
    fn unwrap(self) -> Option<T> {
        Some(self)
    }
}

/// Operations an actor may queue during a callback; applied by the engine.
#[derive(Debug)]
pub(crate) enum Op<M> {
    Send {
        to: NodeId,
        msg: M,
        /// Wire size, computed once when the send was queued; the engine
        /// charges bandwidth from this instead of re-walking the payload.
        bytes: usize,
    },
    SetTimer {
        id: TimerId,
        fire_at: SimTime,
        tag: TimerTag,
    },
    CancelTimer {
        id: TimerId,
    },
    /// Voluntarily halt this node (used by churn experiments).
    Halt,
}

/// The capability handed to an actor during a callback.
///
/// All side effects (sends, timers) are buffered and applied by the engine
/// when the callback returns, which keeps event ordering deterministic.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) node_count: u32,
    pub(crate) link_free_at: SimTime,
    pub(crate) timers: &'a mut TimerSlots,
    pub(crate) ops: &'a mut Vec<Op<M>>,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) metrics: &'a mut Metrics,
}

impl<'a, M> Context<'a, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node this callback runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total number of nodes in the simulation.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// How far this node's upload link is backlogged: the time until a
    /// message queued right now would start transmitting. Producers use
    /// this for backpressure (don't generate faster than the wire drains).
    pub fn link_backlog(&self) -> SimDuration {
        self.link_free_at.saturating_since(self.now)
    }

    /// Queues a unicast message. Delivery time is computed by the network
    /// model (upload serialization + propagation latency). The wire size is
    /// computed here, once, and travels with the message.
    pub fn send(&mut self, to: NodeId, msg: M)
    where
        M: Payload,
    {
        let bytes = msg.wire_size();
        self.ops.push(Op::Send { to, msg, bytes });
    }

    /// Queues the same message to every node in `to`, as sequential unicasts
    /// on this node's upload link (the bandwidth-honest multicast model).
    ///
    /// The sender itself is skipped (a node never pays upload bandwidth to
    /// talk to itself), an empty recipient list queues nothing, the wire
    /// size is computed once for the whole fan-out, and the message is moved
    /// (not cloned) into the final slot.
    pub fn multicast<I>(&mut self, to: I, msg: M)
    where
        I: IntoIterator<Item = NodeId>,
        M: Payload,
    {
        let me = self.node;
        let mut targets = to.into_iter().filter(|&dst| dst != me);
        let Some(first) = targets.next() else { return };
        let bytes = msg.wire_size();
        let mut prev = first;
        for dst in targets {
            self.ops.push(Op::Send {
                to: prev,
                msg: msg.clone(),
                bytes,
            });
            prev = dst;
        }
        self.ops.push(Op::Send {
            to: prev,
            msg,
            bytes,
        });
    }

    /// Arms a timer firing `delay` from now; returns a handle for
    /// cancellation. The tag is delivered back in `on_timer`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        let id = self.timers.arm();
        self.ops.push(Op::SetTimer {
            id,
            fire_at: self.now + delay,
            tag,
        });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.ops.push(Op::CancelTimer { id });
    }

    /// Halts this node: it stops receiving messages and timers. Used to model
    /// voluntary departure (churn).
    pub fn halt(&mut self) {
        self.ops.push(Op::Halt);
    }

    /// Deterministic per-node randomness.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The simulation-wide metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Reborrows this context as a context for an embedded protocol message
    /// type `T`, so a [`ProtocolCore`] over `T` can be driven from an actor
    /// whose envelope is `M`.
    pub fn narrow<T>(&mut self) -> NarrowContext<'_, 'a, M, T>
    where
        M: Codec<T>,
    {
        NarrowContext {
            inner: self,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A view of a [`Context`] that sends protocol messages `T` wrapped in the
/// envelope `M`. Created by [`Context::narrow`].
///
/// Only [`NarrowContext::send`] and [`NarrowContext::multicast`] differ from
/// the underlying context (they wrap `T` into the envelope before queueing);
/// everything else — timers, rng, metrics, topology queries — comes straight
/// from [`Context`] via `Deref`, so the envelope logic lives in exactly one
/// place.
pub struct NarrowContext<'b, 'a, M, T> {
    inner: &'b mut Context<'a, M>,
    _marker: std::marker::PhantomData<T>,
}

impl<'b, 'a, M, T> std::ops::Deref for NarrowContext<'b, 'a, M, T> {
    type Target = Context<'a, M>;
    fn deref(&self) -> &Context<'a, M> {
        self.inner
    }
}

impl<'b, 'a, M, T> std::ops::DerefMut for NarrowContext<'b, 'a, M, T> {
    fn deref_mut(&mut self) -> &mut Context<'a, M> {
        self.inner
    }
}

impl<'b, 'a, M: Codec<T>, T> NarrowContext<'b, 'a, M, T> {
    /// See [`Context::send`]; the protocol message is wrapped into the
    /// envelope first.
    pub fn send(&mut self, to: NodeId, msg: T) {
        self.inner.send(to, M::wrap(msg));
    }
    /// See [`Context::multicast`]; the protocol message is wrapped into the
    /// envelope once and fanned out by the underlying context.
    pub fn multicast<I>(&mut self, to: I, msg: T)
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.inner.multicast(to, M::wrap(msg));
    }
}

/// A simulated node's behaviour over envelope message type `M`.
///
/// The `Any` supertrait allows post-run downcasting via
/// [`crate::engine::Sim::actor_as`]; the `Send` supertrait lets the parallel
/// engine move whole partitions (actors included) onto worker threads for
/// the span of a lookahead window.
pub trait Actor<M>: std::any::Any + Send {
    /// Called once when the node is added to the simulation, before any
    /// event runs, with the node's id and the metrics sink. Actors use this
    /// to intern counter handles against the *parent* metrics: handles
    /// minted here survive parallel-engine shard forks, because forked
    /// counter sets share the parent's interning index.
    fn on_attach(&mut self, me: NodeId, metrics: &mut Metrics) {
        let _ = (me, metrics);
    }

    /// Called once when the simulation starts (or when the node joins).
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer armed by this node fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: TimerTag) {
        let _ = (ctx, tag);
    }

    /// The actor's kind label for dispatch profiling.
    ///
    /// Defaults to the concrete type name; the engine shortens module paths
    /// and interns the result to a dense index at
    /// [`crate::engine::Sim::add_node`] time, so this is never called on the
    /// hot path.
    fn kind_name(&self) -> &'static str {
        std::any::type_name::<Self>()
    }

    /// Approximate resident bytes of this actor's state, for the engine's
    /// `mem.bytes_per_node` / `mem.resident_bytes` report metrics.
    ///
    /// The default counts the actor's own struct (which, via
    /// monomorphization, is the concrete size even through `Box<dyn
    /// Actor>`); actors holding heap containers should add their heap
    /// footprint. Accuracy to the byte is not required — the metric gates
    /// the *scaling shape* (bytes per node at mega-scale), not an exact
    /// allocator measurement.
    fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }
}

/// A protocol state machine over its own message type `T`.
///
/// Implementations stay independent of the envelope type; [`ActorOf`] lifts
/// them into an [`Actor`] for any envelope `M: Codec<T>` (which requires
/// cores to be `Send`, like every [`Actor`]).
pub trait ProtocolCore<T>: Send + 'static {
    /// Called once when the node is added, before any event runs. See
    /// [`Actor::on_attach`].
    fn attach(&mut self, me: NodeId, metrics: &mut Metrics) {
        let _ = (me, metrics);
    }

    /// Approximate resident bytes of this core's state. See
    /// [`Actor::approx_bytes`].
    fn approx_bytes(&self) -> usize {
        std::mem::size_of_val(self)
    }

    /// Called once when the simulation starts.
    fn start<M: Codec<T>>(&mut self, ctx: &mut NarrowContext<'_, '_, M, T>) {
        let _ = ctx;
    }

    /// Called on delivery of a protocol message.
    fn message<M: Codec<T>>(&mut self, ctx: &mut NarrowContext<'_, '_, M, T>, from: NodeId, msg: T);

    /// Called when a timer fires.
    fn timer<M: Codec<T>>(&mut self, ctx: &mut NarrowContext<'_, '_, M, T>, tag: TimerTag) {
        let _ = (ctx, tag);
    }
}

/// Lifts a [`ProtocolCore`] over `T` into an [`Actor`] over envelope `M`.
///
/// Messages that do not decode to `T` are ignored, so several `ActorOf`
/// layers can coexist behind a dispatching actor. The `T` parameter names
/// the protocol message type the core speaks.
#[derive(Debug)]
pub struct ActorOf<C, T> {
    core: C,
    _protocol: std::marker::PhantomData<fn(T)>,
}

impl<C, T> ActorOf<C, T> {
    /// Wraps a protocol core.
    pub fn new(core: C) -> Self {
        ActorOf {
            core,
            _protocol: std::marker::PhantomData,
        }
    }

    /// Read access to the wrapped core (for post-run inspection).
    pub fn core(&self) -> &C {
        &self.core
    }

    /// Consumes the wrapper, returning the core.
    pub fn into_inner(self) -> C {
        self.core
    }
}

impl<M, T, C> Actor<M> for ActorOf<C, T>
where
    M: Codec<T> + 'static,
    T: 'static,
    C: ProtocolCore<T>,
{
    fn on_attach(&mut self, me: NodeId, metrics: &mut Metrics) {
        self.core.attach(me, metrics);
    }

    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        self.core.start(&mut ctx.narrow());
    }

    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        if let Some(t) = msg.unwrap() {
            self.core.message(&mut ctx.narrow(), from, t);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: TimerTag) {
        self.core.timer(&mut ctx.narrow(), tag);
    }

    fn approx_bytes(&self) -> usize {
        self.core.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[derive(Debug, Clone, PartialEq)]
    struct Ping(usize);
    impl Payload for Ping {
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    /// Runs `f` against a standalone context for node 1 of 4, returning the
    /// ops it queued.
    fn with_context(f: impl FnOnce(&mut Context<'_, Ping>)) -> Vec<Op<Ping>> {
        let mut timers = TimerSlots::new();
        let mut ops: Vec<Op<Ping>> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut metrics = Metrics::new();
        let mut ctx = Context {
            now: SimTime::ZERO,
            node: NodeId(1),
            node_count: 4,
            link_free_at: SimTime::ZERO,
            timers: &mut timers,
            ops: &mut ops,
            rng: &mut rng,
            metrics: &mut metrics,
        };
        f(&mut ctx);
        ops
    }

    #[test]
    fn multicast_skips_self_and_empty_lists() {
        // Empty recipient list: nothing queued, no clone, no size walk.
        assert!(with_context(|ctx| ctx.multicast(Vec::new(), Ping(8))).is_empty());
        // Self-only list: likewise nothing.
        assert!(with_context(|ctx| ctx.multicast(vec![NodeId(1)], Ping(8))).is_empty());
        // Self mixed into a real list: only the two peers get a send, each
        // carrying the size computed once up front.
        let ops = with_context(|ctx| {
            ctx.multicast(vec![NodeId(0), NodeId(1), NodeId(2)], Ping(8));
        });
        let sends: Vec<(NodeId, usize)> = ops
            .iter()
            .map(|op| match op {
                Op::Send { to, bytes, .. } => (*to, *bytes),
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert_eq!(sends, vec![(NodeId(0), 8), (NodeId(2), 8)]);
    }

    #[test]
    fn send_memoizes_wire_size_in_the_op() {
        let ops = with_context(|ctx| ctx.send(NodeId(3), Ping(21)));
        match &ops[..] {
            [Op::Send { to, msg, bytes }] => {
                assert_eq!(*to, NodeId(3));
                assert_eq!(*bytes, 21);
                assert_eq!(*bytes, msg.wire_size());
            }
            other => panic!("unexpected ops {other:?}"),
        }
    }

    #[test]
    fn identity_codec_roundtrips() {
        let p = Ping(42);
        let wrapped = <Ping as Codec<Ping>>::wrap(p.clone());
        assert_eq!(wrapped.clone().unwrap(), Some(p));
        assert_eq!(wrapped.wire_size(), 42);
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }

    #[test]
    fn timer_tag_constructors() {
        assert_eq!(
            TimerTag::of_kind(3),
            TimerTag {
                kind: 3,
                a: 0,
                b: 0
            }
        );
        assert_eq!(
            TimerTag::with_a(3, 9),
            TimerTag {
                kind: 3,
                a: 9,
                b: 0
            }
        );
        assert_eq!(
            TimerTag::new(1, 2, 3),
            TimerTag {
                kind: 1,
                a: 2,
                b: 3
            }
        );
    }
}
