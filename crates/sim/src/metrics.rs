//! Simulation-wide measurement sink.
//!
//! Experiments read throughput, latency percentiles, propagation curves,
//! and per-stage bundle lifecycles out of [`Metrics`] after a run. Actors
//! record into it through [`crate::actor::Context::metrics`].
//!
//! Storage is bounded: latency series live in fixed-footprint
//! [`LogHistogram`]s (≤ 1/32 relative bucket error) instead of per-sample
//! vectors, labeled counters are plain cells, and bundle timelines are
//! capped. Everything snapshots into a [`RunReport`] via
//! [`Metrics::run_report`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

pub use predis_telemetry::{BundleKey, CachedCounter, CounterHandle, Labels, RunReport, Stage};
use predis_telemetry::{Counters, LogHistogram, Timelines};

use crate::time::{SimDuration, SimTime};

/// A single commit observation: `txs` transactions committed at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitEvent {
    /// When the commit happened (simulated time).
    pub at: SimTime,
    /// Number of transactions the commit confirmed.
    pub txs: u64,
}

/// Collected measurements of one simulation run.
///
/// # Examples
///
/// ```
/// use predis_sim::{Metrics, SimDuration, SimTime};
///
/// let mut m = Metrics::new();
/// m.incr("commits", 1);
/// m.record_commit(SimTime::from_secs(1), 500);
/// m.record_latency("lat", SimDuration::from_millis(80));
/// assert_eq!(m.committed_txs_in(SimTime::ZERO, SimTime::from_secs(2)), 500);
/// assert_eq!(m.latency_percentile("lat", 0.5), Some(SimDuration::from_millis(80)));
/// ```
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Counters,
    latencies: HashMap<&'static str, LogHistogram>,
    commits: Vec<CommitEvent>,
    arrivals: HashMap<u64, Vec<SimTime>>,
    timelines: Timelines,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to the named (global, unlabeled) counter.
    pub fn incr(&mut self, name: &'static str, n: u64) {
        self.counters.incr(name, Labels::GLOBAL, n);
    }

    /// Reads the global (unlabeled) cell of a counter (zero if never written).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name, Labels::GLOBAL)
    }

    /// Adds `n` to a labeled counter cell (node / chain / zone dimensions).
    pub fn incr_labeled(&mut self, name: &'static str, labels: Labels, n: u64) {
        self.counters.incr(name, labels, n);
    }

    /// Overwrites a labeled cell — gauge semantics (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, labels: Labels, value: u64) {
        self.counters.set(name, labels, value);
    }

    /// Interns a counter cell once, returning a [`CounterHandle`] for
    /// [`Metrics::incr_handle`]. Interning alone leaves no trace in
    /// reports; only written cells appear.
    pub fn counter_handle(&mut self, name: &'static str, labels: Labels) -> CounterHandle {
        self.counters.handle(name, labels)
    }

    /// Adds `n` through a pre-interned handle — no string hashing or map
    /// lookup, the form per-event hot paths use.
    #[inline]
    pub fn incr_handle(&mut self, handle: CounterHandle, n: u64) {
        self.counters.incr_by_handle(handle, n);
    }

    /// Adds `n` through a caller-owned [`CachedCounter`] — the hot-path
    /// form for actors, whose metrics sink changes identity when they
    /// migrate between the sequential engine and partition workers. Costs
    /// one interning lookup per sink migration, a dense-array add
    /// otherwise.
    #[inline]
    pub fn incr_cached(
        &mut self,
        cache: &mut CachedCounter,
        name: &'static str,
        labels: Labels,
        n: u64,
    ) {
        self.counters.incr_cached(cache, name, labels, n);
    }

    /// Reads one labeled cell (zero if never written).
    pub fn labeled_counter(&self, name: &'static str, labels: Labels) -> u64 {
        self.counters.get(name, labels)
    }

    /// Sum of a counter across every label combination (including global).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.counters.total(name)
    }

    /// All counter cells, for report assembly.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Records one latency sample under `name`.
    ///
    /// Samples land in a bounded log-bucketed histogram: memory does not
    /// grow with the number of observations, and percentiles are within one
    /// bucket width (relative error 1/32) of exact.
    pub fn record_latency(&mut self, name: &'static str, sample: SimDuration) {
        self.latencies
            .entry(name)
            .or_default()
            .record(sample.as_nanos());
    }

    /// Number of latency samples recorded under `name`.
    pub fn latency_count(&self, name: &'static str) -> usize {
        self.latencies.get(name).map_or(0, |h| h.count() as usize)
    }

    /// The full histogram recorded under `name`, if any samples exist.
    pub fn latency_histogram(&self, name: &'static str) -> Option<&LogHistogram> {
        self.latencies.get(name)
    }

    /// The `p`-th percentile (0.0..=1.0) of latency samples under `name`,
    /// or `None` if no samples were recorded. `p = 0` and `p = 1` are the
    /// exact extremes; interior percentiles are within one histogram bucket
    /// width of the exact order statistic.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn latency_percentile(&self, name: &'static str, p: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0,1]");
        self.latencies
            .get(name)?
            .percentile(p)
            .map(SimDuration::from_nanos)
    }

    /// The mean of latency samples under `name`, or `None` if empty.
    pub fn latency_mean(&self, name: &'static str) -> Option<SimDuration> {
        self.latencies
            .get(name)?
            .mean()
            .map(|m| SimDuration::from_nanos(m.round() as u64))
    }

    /// Stamps `stage` of the bundle identified by `key` at time `at`.
    ///
    /// The earliest observation of a stage wins, so concurrent observers
    /// (every replica sees the same bundle) converge on the first time the
    /// pipeline reached that stage.
    pub fn timeline_mark(&mut self, key: BundleKey, stage: Stage, at: SimTime) {
        self.timelines.mark(key, stage, at.as_nanos());
    }

    /// All bundle lifecycle timelines recorded so far.
    pub fn timelines(&self) -> &Timelines {
        &self.timelines
    }

    /// Records that `txs` transactions committed at `at`.
    pub fn record_commit(&mut self, at: SimTime, txs: u64) {
        self.commits.push(CommitEvent { at, txs });
    }

    /// All commit events, in recording order.
    pub fn commits(&self) -> &[CommitEvent] {
        &self.commits
    }

    /// Total transactions committed in the half-open window `[from, to)`.
    pub fn committed_txs_in(&self, from: SimTime, to: SimTime) -> u64 {
        self.commits
            .iter()
            .filter(|c| c.at >= from && c.at < to)
            .map(|c| c.txs)
            .sum()
    }

    /// Transactions per second over the window `[from, to)`.
    ///
    /// Returns 0.0 for an empty window.
    pub fn throughput_tps(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_since(from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        self.committed_txs_in(from, to) as f64 / span
    }

    /// Marks that the object identified by `key` (e.g. a block) arrived
    /// somewhere at time `at`. Used for propagation-latency curves.
    pub fn mark_arrival(&mut self, key: u64, at: SimTime) {
        self.arrivals.entry(key).or_default().push(at);
    }

    /// All recorded arrival times for `key`, unsorted.
    pub fn arrivals(&self, key: u64) -> &[SimTime] {
        self.arrivals.get(&key).map_or(&[], Vec::as_slice)
    }

    /// The time by which a `fraction` (0..=1] of `population` recipients had
    /// received `key`, measured from `origin`. `None` if fewer than
    /// `ceil(fraction * population)` arrivals were recorded.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]` or `population` is zero.
    pub fn propagation_to_fraction(
        &self,
        key: u64,
        origin: SimTime,
        population: usize,
        fraction: f64,
    ) -> Option<SimDuration> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0,1]"
        );
        assert!(population > 0, "population must be positive");
        let needed = ((population as f64) * fraction).ceil() as usize;
        let mut times: Vec<SimTime> = self.arrivals(key).to_vec();
        if times.len() < needed {
            return None;
        }
        times.sort_unstable();
        Some(times[needed - 1].saturating_since(origin))
    }

    /// Keys with at least one recorded arrival.
    pub fn arrival_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.arrivals.keys().copied()
    }

    /// The committed-transaction rate over consecutive buckets of width
    /// `bucket`, from time zero to `until` — the raw series behind a
    /// throughput-over-time plot.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn throughput_series(&self, bucket: SimDuration, until: SimTime) -> Vec<f64> {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        let n = (until.as_nanos() / bucket.as_nanos()) as usize;
        let mut counts = vec![0u64; n];
        for c in &self.commits {
            let idx = (c.at.as_nanos() / bucket.as_nanos()) as usize;
            if idx < n {
                counts[idx] += c.txs;
            }
        }
        let secs = bucket.as_secs_f64();
        counts.into_iter().map(|c| c as f64 / secs).collect()
    }

    /// Detects the stable suffix of a run: the earliest bucket index from
    /// which every bucket's throughput stays within `tolerance` (relative)
    /// of the suffix mean. Returns `None` if no suffix of at least three
    /// buckets is stable — the run never settled.
    pub fn stable_from(
        &self,
        bucket: SimDuration,
        until: SimTime,
        tolerance: f64,
    ) -> Option<usize> {
        let series = self.throughput_series(bucket, until);
        if series.len() < 3 {
            return None;
        }
        for start in 0..=series.len() - 3 {
            let window = &series[start..];
            let mean: f64 = window.iter().sum::<f64>() / window.len() as f64;
            if mean <= 0.0 {
                continue;
            }
            if window.iter().all(|&x| (x - mean).abs() <= tolerance * mean) {
                return Some(start);
            }
        }
        None
    }

    /// A zeroed fork of this sink for a partition worker: the counter store
    /// shares the interned cell index (so [`CounterHandle`]s minted on the
    /// parent stay valid in the fork) but every cell starts at zero, and all
    /// other stores start empty. Fold back with [`Metrics::absorb_worker`].
    pub(crate) fn fork_for_worker(&self) -> Metrics {
        Metrics {
            counters: self.counters.fork_zeroed(),
            latencies: HashMap::new(),
            commits: Vec::new(),
            arrivals: HashMap::new(),
            timelines: Timelines::with_cap(self.timelines.cap()),
        }
    }

    /// Folds a worker fork back in. Counters add cell-wise and histograms
    /// merge bucket-wise (both commutative), arrivals append per key (their
    /// consumers sort), timelines re-mark with earliest-observation-wins,
    /// and commits append then stably re-sort by simulated time — so every
    /// aggregate a report reads is identical to the sequential run's.
    pub(crate) fn absorb_worker(&mut self, other: Metrics) {
        self.counters.absorb(&other.counters);
        self.timelines.absorb(&other.timelines);
        for (name, hist) in &other.latencies {
            self.latencies.entry(name).or_default().merge(hist);
        }
        for (key, times) in other.arrivals {
            self.arrivals.entry(key).or_default().extend(times);
        }
        self.commits.extend(other.commits);
        self.commits.sort_by_key(|c| c.at);
    }

    /// Snapshots everything recorded so far into a machine-readable
    /// [`RunReport`] named `name`: every latency histogram, every labeled
    /// counter cell, and the per-stage bundle-lifecycle breakdown.
    ///
    /// Scalar metrics (throughput, stable-window bounds) and run metadata
    /// are the caller's to add — they depend on experiment-level knowledge
    /// this sink does not have.
    pub fn run_report(&self, name: impl Into<String>) -> RunReport {
        let mut report = RunReport::new(name);
        report.add_counters(&self.counters);
        let mut names: Vec<&'static str> = self.latencies.keys().copied().collect();
        names.sort_unstable();
        for n in names {
            report.add_histogram(n, &self.latencies[n]);
        }
        report.add_timelines(&self.timelines);
        report
    }
}

/// Summary statistics of a throughput/latency run, serializable for the
/// bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Sustained throughput (transactions per second) in the stable window.
    pub throughput_tps: f64,
    /// Mean client latency in milliseconds.
    pub mean_latency_ms: f64,
    /// 50th percentile client latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th percentile client latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Total committed transactions in the measurement window.
    pub committed_txs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn handles_and_names_share_cells() {
        let mut m = Metrics::new();
        let h = m.counter_handle("node.deliveries", Labels::node(3));
        m.incr_handle(h, 5);
        m.incr_labeled("node.deliveries", Labels::node(3), 2);
        assert_eq!(m.labeled_counter("node.deliveries", Labels::node(3)), 7);
        // An interned-but-unwritten handle does not show up in reports.
        let _idle = m.counter_handle("node.drops", Labels::node(3));
        let report = m.run_report("handles");
        assert_eq!(report.counter("node.deliveries", Labels::node(3)), 7);
        assert!(report.counters.iter().all(|c| c.name != "node.drops"));
    }

    #[test]
    fn labeled_counters_are_independent_cells() {
        let mut m = Metrics::new();
        m.incr_labeled("deliveries", Labels::node(1), 4);
        m.incr_labeled("deliveries", Labels::node(2), 6);
        assert_eq!(m.labeled_counter("deliveries", Labels::node(1)), 4);
        assert_eq!(m.labeled_counter("deliveries", Labels::node(2)), 6);
        assert_eq!(m.counter("deliveries"), 0);
        assert_eq!(m.counter_total("deliveries"), 10);
        m.set_gauge("depth", Labels::zone(1), 9);
        m.set_gauge("depth", Labels::zone(1), 5);
        assert_eq!(m.labeled_counter("depth", Labels::zone(1)), 5);
    }

    #[test]
    fn latency_percentiles() {
        let mut m = Metrics::new();
        for ms in [10u64, 20, 30, 40, 50] {
            m.record_latency("lat", SimDuration::from_millis(ms));
        }
        // Extremes are exact; interior percentiles are within one log-bucket
        // width (1/32 relative) of the exact order statistic.
        assert_eq!(
            m.latency_percentile("lat", 0.0),
            Some(SimDuration::from_millis(10))
        );
        assert_eq!(
            m.latency_percentile("lat", 1.0),
            Some(SimDuration::from_millis(50))
        );
        let p50 = m.latency_percentile("lat", 0.5).unwrap();
        let exact = SimDuration::from_millis(30);
        let tol = exact.as_nanos() / 32 + 1;
        assert!(
            p50.as_nanos().abs_diff(exact.as_nanos()) <= tol,
            "p50 {p50} not within one bucket of {exact}"
        );
        assert_eq!(m.latency_mean("lat"), Some(SimDuration::from_millis(30)));
        assert_eq!(m.latency_count("lat"), 5);
    }

    #[test]
    fn empty_latency_series_yield_none() {
        let m = Metrics::new();
        assert_eq!(m.latency_percentile("nope", 0.0), None);
        assert_eq!(m.latency_percentile("nope", 0.5), None);
        assert_eq!(m.latency_percentile("nope", 1.0), None);
        assert_eq!(m.latency_mean("nope"), None);
        assert_eq!(m.latency_count("nope"), 0);
        assert!(m.latency_histogram("nope").is_none());
    }

    #[test]
    fn latency_storage_is_bounded() {
        let mut m = Metrics::new();
        m.record_latency("lat", SimDuration::from_micros(100));
        let footprint = m.latency_histogram("lat").unwrap().footprint_bytes();
        for i in 0..200_000u64 {
            m.record_latency("lat", SimDuration::from_micros(50 + i % 10_000));
        }
        assert_eq!(
            m.latency_histogram("lat").unwrap().footprint_bytes(),
            footprint,
            "histogram footprint grew with observations"
        );
        assert_eq!(m.latency_count("lat"), 200_001);
    }

    #[test]
    fn timeline_marks_feed_stage_breakdown() {
        let mut m = Metrics::new();
        let key = BundleKey {
            producer: 3,
            chain: 3,
            height: 1,
        };
        m.timeline_mark(key, Stage::Produced, SimTime::from_millis(10));
        m.timeline_mark(key, Stage::Committed, SimTime::from_millis(250));
        // A later duplicate observation of the same stage is ignored.
        m.timeline_mark(key, Stage::Committed, SimTime::from_millis(400));
        let t = m.timelines().get(&key).unwrap();
        assert_eq!(
            t.span(Stage::Produced, Stage::Committed),
            Some(SimDuration::from_millis(240).as_nanos())
        );
    }

    #[test]
    fn run_report_snapshots_sink_contents() {
        let mut m = Metrics::new();
        m.incr("net.messages", 41);
        m.incr_labeled("node.deliveries", Labels::node(2), 7);
        m.record_latency("client_latency", SimDuration::from_millis(12));
        let key = BundleKey {
            producer: 0,
            chain: 0,
            height: 1,
        };
        m.timeline_mark(key, Stage::Produced, SimTime::from_millis(1));
        m.timeline_mark(key, Stage::Committed, SimTime::from_millis(5));
        let report = m.run_report("snap");
        assert_eq!(report.counter("net.messages", Labels::GLOBAL), 41);
        assert_eq!(report.counter("node.deliveries", Labels::node(2)), 7);
        assert_eq!(report.histogram("client_latency").unwrap().summary.count, 1);
        assert_eq!(
            report.stage("produced->committed").unwrap().summary.count,
            1
        );
        assert_eq!(report.timeline_count, 1);
    }

    #[test]
    fn throughput_window() {
        let mut m = Metrics::new();
        m.record_commit(SimTime::from_secs(1), 100);
        m.record_commit(SimTime::from_secs(2), 200);
        m.record_commit(SimTime::from_secs(3), 400);
        assert_eq!(
            m.committed_txs_in(SimTime::from_secs(1), SimTime::from_secs(3)),
            300
        );
        let tps = m.throughput_tps(SimTime::from_secs(0), SimTime::from_secs(4));
        assert!((tps - 175.0).abs() < 1e-9);
        assert_eq!(
            m.throughput_tps(SimTime::from_secs(2), SimTime::from_secs(2)),
            0.0
        );
    }

    #[test]
    fn throughput_series_buckets_commits() {
        let mut m = Metrics::new();
        m.record_commit(SimTime::from_millis(100), 10);
        m.record_commit(SimTime::from_millis(900), 20);
        m.record_commit(SimTime::from_millis(1500), 30);
        let series = m.throughput_series(SimDuration::from_secs(1), SimTime::from_secs(3));
        assert_eq!(series, vec![30.0, 30.0, 0.0]);
    }

    #[test]
    fn stable_from_finds_the_settled_suffix() {
        let mut m = Metrics::new();
        // Ramp: 10, 100, 100, 100, 100 tx/s.
        for (sec, txs) in [(0u64, 10u64), (1, 100), (2, 100), (3, 100), (4, 100)] {
            m.record_commit(SimTime::from_millis(sec * 1000 + 500), txs);
        }
        let start = m
            .stable_from(SimDuration::from_secs(1), SimTime::from_secs(5), 0.05)
            .unwrap();
        assert_eq!(start, 1);
        // A wildly oscillating series has no stable suffix.
        let mut osc = Metrics::new();
        for (sec, txs) in [(0u64, 10u64), (1, 500), (2, 10), (3, 500), (4, 10)] {
            osc.record_commit(SimTime::from_millis(sec * 1000 + 500), txs);
        }
        assert_eq!(
            osc.stable_from(SimDuration::from_secs(1), SimTime::from_secs(5), 0.05),
            None
        );
    }

    #[test]
    fn propagation_fractions() {
        let mut m = Metrics::new();
        let origin = SimTime::from_secs(10);
        for ms in [100u64, 200, 300, 400] {
            m.mark_arrival(7, origin + SimDuration::from_millis(ms));
        }
        // 4-node population: 50% = 2nd arrival, 100% = 4th.
        assert_eq!(
            m.propagation_to_fraction(7, origin, 4, 0.5),
            Some(SimDuration::from_millis(200))
        );
        assert_eq!(
            m.propagation_to_fraction(7, origin, 4, 1.0),
            Some(SimDuration::from_millis(400))
        );
        // Not enough arrivals for a larger population.
        assert_eq!(m.propagation_to_fraction(7, origin, 8, 1.0), None);
        assert_eq!(m.arrivals(8).len(), 0);
    }
}
