//! Event tracing: an optional recorder that captures every delivery, timer
//! and drop the engine processes, for debugging protocol runs and for
//! asserting fine-grained ordering properties in tests.
//!
//! Tracing is off by default (zero cost beyond a branch); enable it with
//! [`crate::engine::Sim::enable_trace`]. Because recording every event of a
//! long run is enormous, the recorder supports a bounded ring buffer and
//! per-kind counters that never drop.

use std::collections::VecDeque;

use crate::actor::{NodeId, TimerTag};
use crate::time::SimTime;

/// What kind of engine event a trace entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A node's `on_start` ran.
    Start,
    /// A message was delivered (`from`, `bytes` populated).
    Deliver,
    /// A timer fired (`tag` populated).
    Timer,
    /// A message was dropped by the fault plan (`from`, `bytes` populated).
    Drop,
    /// A node crashed or halted.
    Halt,
}

/// One recorded engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// The node the event happened on (the receiver, for deliveries).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
    /// Sender, for deliveries and drops.
    pub from: Option<NodeId>,
    /// Wire size, for deliveries and drops.
    pub bytes: usize,
    /// Tag, for timer firings.
    pub tag: Option<TimerTag>,
}

/// A bounded recorder of engine events.
///
/// # Examples
///
/// ```
/// use predis_sim::prelude::*;
///
/// #[derive(Debug)]
/// struct Quiet;
/// impl Actor<Ping> for Quiet {
///     fn on_message(&mut self, _: &mut Context<'_, Ping>, _: NodeId, _: Ping) {}
/// }
/// #[derive(Debug, Clone)]
/// struct Ping;
/// impl Payload for Ping {
///     fn wire_size(&self) -> usize { 8 }
/// }
///
/// let net = Network::new(LatencyModel::lan(), SimDuration::ZERO);
/// let mut sim: Sim<Ping> = Sim::new(1, net);
/// sim.enable_trace(128);
/// let a = sim.add_node(LinkConfig::paper_default(), Box::new(Quiet), SimTime::ZERO);
/// let b = sim.add_node(LinkConfig::paper_default(), Box::new(Quiet), SimTime::ZERO);
/// sim.inject(b, a, Ping, SimTime::from_millis(1));
/// sim.run_until(SimTime::from_secs(1));
/// let trace = sim.trace().unwrap();
/// assert_eq!(trace.deliveries, 1);
/// assert!(trace.render().contains("<-"));
/// ```
#[derive(Debug)]
pub struct Trace {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    /// Events recorded since the start (never truncated).
    pub total: u64,
    /// Deliveries recorded.
    pub deliveries: u64,
    /// Timer firings recorded.
    pub timers: u64,
    /// Fault-plan drops recorded.
    pub drops: u64,
    /// Total delivered bytes.
    pub delivered_bytes: u64,
}

impl Trace {
    /// A recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Trace {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            total: 0,
            deliveries: 0,
            timers: 0,
            drops: 0,
            delivered_bytes: 0,
        }
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        match event.kind {
            TraceKind::Deliver => {
                self.deliveries += 1;
                self.delivered_bytes += event.bytes as u64;
            }
            TraceKind::Timer => self.timers += 1,
            TraceKind::Drop => self.drops += 1,
            _ => {}
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Retained events involving `node` (as receiver).
    pub fn events_on(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter().filter(move |e| e.node == node)
    }

    /// Number of retained events (≤ capacity).
    pub fn retained(&self) -> usize {
        self.ring.len()
    }

    /// Renders the retained events as a human-readable log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            let line = match e.kind {
                TraceKind::Start => format!("{} {} START\n", e.at, e.node),
                TraceKind::Deliver => format!(
                    "{} {} <- {} ({} B)\n",
                    e.at,
                    e.node,
                    e.from.map(|n| n.to_string()).unwrap_or_default(),
                    e.bytes
                ),
                TraceKind::Timer => format!(
                    "{} {} TIMER kind={}\n",
                    e.at,
                    e.node,
                    e.tag.map(|t| t.kind).unwrap_or_default()
                ),
                TraceKind::Drop => format!(
                    "{} {} DROPPED from {} ({} B)\n",
                    e.at,
                    e.node,
                    e.from.map(|n| n.to_string()).unwrap_or_default(),
                    e.bytes
                ),
                TraceKind::Halt => format!("{} {} HALT\n", e.at, e.node),
            };
            out.push_str(&line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, at_ms: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(at_ms),
            node: NodeId(1),
            kind,
            from: Some(NodeId(0)),
            bytes: 100,
            tag: Some(TimerTag::of_kind(7)),
        }
    }

    #[test]
    fn counters_never_truncate() {
        let mut t = Trace::with_capacity(2);
        for i in 0..10 {
            t.record(ev(TraceKind::Deliver, i));
        }
        assert_eq!(t.total, 10);
        assert_eq!(t.deliveries, 10);
        assert_eq!(t.delivered_bytes, 1000);
        assert_eq!(t.retained(), 2);
        // Ring keeps the newest.
        let kept: Vec<u64> = t.events().map(|e| e.at.as_nanos() / 1_000_000).collect();
        assert_eq!(kept, vec![8, 9]);
    }

    #[test]
    fn wraparound_keeps_per_kind_counters_exact() {
        // Interleave kinds far past the ring capacity: retained events lose
        // the old entries but every per-kind counter stays exact.
        let mut t = Trace::with_capacity(3);
        let (mut deliver, mut timer, mut drop) = (0u64, 0u64, 0u64);
        for i in 0..1000u64 {
            let kind = match i % 3 {
                0 => {
                    deliver += 1;
                    TraceKind::Deliver
                }
                1 => {
                    timer += 1;
                    TraceKind::Timer
                }
                _ => {
                    drop += 1;
                    TraceKind::Drop
                }
            };
            t.record(ev(kind, i));
        }
        assert_eq!(t.retained(), 3);
        assert_eq!(t.total, 1000);
        assert_eq!((t.deliveries, t.timers, t.drops), (deliver, timer, drop));
        assert_eq!(t.delivered_bytes, deliver * 100);
        // The ring holds exactly the newest three timestamps.
        let kept: Vec<u64> = t.events().map(|e| e.at.as_nanos() / 1_000_000).collect();
        assert_eq!(kept, vec![997, 998, 999]);
    }

    #[test]
    fn kind_counters() {
        let mut t = Trace::with_capacity(16);
        t.record(ev(TraceKind::Deliver, 1));
        t.record(ev(TraceKind::Timer, 2));
        t.record(ev(TraceKind::Drop, 3));
        t.record(ev(TraceKind::Start, 0));
        assert_eq!((t.deliveries, t.timers, t.drops), (1, 1, 1));
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::with_capacity(8);
        t.record(ev(TraceKind::Deliver, 1));
        t.record(ev(TraceKind::Timer, 2));
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("<- n0 (100 B)"));
        assert!(text.contains("TIMER kind=7"));
    }

    #[test]
    fn events_on_filters_by_node() {
        let mut t = Trace::with_capacity(8);
        t.record(ev(TraceKind::Deliver, 1));
        let mut other = ev(TraceKind::Deliver, 2);
        other.node = NodeId(5);
        t.record(other);
        assert_eq!(t.events_on(NodeId(1)).count(), 1);
        assert_eq!(t.events_on(NodeId(5)).count(), 1);
        assert_eq!(t.events_on(NodeId(9)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::with_capacity(0);
    }
}
