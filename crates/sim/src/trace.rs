//! Event tracing: trace forensics for the deterministic engine.
//!
//! Three observers with different cost/fidelity trade-offs share the same
//! canonical event stream (`(time, seq, node, kind, from, bytes, tag)`):
//!
//! * [`TraceDigest`] — an always-on O(1)-memory streaming fingerprint folded
//!   over *every* event the engine pops, finalized as a 128-bit hex string.
//!   Two runs with equal fingerprints processed byte-identical event
//!   streams; this is strictly stronger than comparing end-of-run metrics.
//! * [`Trace`] — an optional bounded ring of recently *dispatched* events
//!   plus per-kind counters that never truncate, for debugging and tests.
//!   Enable with [`crate::engine::Sim::enable_trace`].
//! * [`TraceCapture`] — an optional full capture streaming one JSON line per
//!   event to disk, the input to the `trace_export` (Perfetto) and
//!   `trace_diff` (first-divergence) tools. Enable with
//!   [`crate::engine::Sim::enable_capture`] or the `PREDIS_TRACE_DIR`
//!   environment variable.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};

use crate::actor::{NodeId, TimerTag};
use crate::time::SimTime;

/// Canonical event-kind names of the digest/capture stream, indexed by the
/// kind code the engine folds (start=0, deliver=1, timer=2, crash=3,
/// revive=4).
pub const CANON_KINDS: [&str; 5] = ["start", "deliver", "timer", "crash", "revive"];

/// The canonical tuple of one dispatched event, built once per pop and
/// handed to every observer (digest, capture).
#[derive(Debug, Clone, Copy)]
pub struct CanonEvent {
    /// Virtual dispatch time in nanoseconds.
    pub at_nanos: u64,
    /// Global scheduling sequence number.
    pub seq: u64,
    /// Dispatching node.
    pub node: u32,
    /// Kind code (index into [`CANON_KINDS`]).
    pub kind: u64,
    /// Sender, for deliveries.
    pub from: Option<NodeId>,
    /// Estimated wire bytes, for deliveries (0 otherwise).
    pub bytes: u64,
    /// Timer tag, for timer firings.
    pub tag: Option<TimerTag>,
}

/// An always-on streaming fingerprint of the canonical event stream.
///
/// Every event the engine pops is folded as a fixed sequence of `u64` words
/// through a two-lane multiply–rotate–xor mix (constants from the
/// SplitMix64/Murmur3 family). The state is 24 bytes regardless of run
/// length, folding costs a few nanoseconds per event, and the final
/// [`TraceDigest::fingerprint`] avalanches both lanes so single-bit
/// perturbations of any field of any event flip the rendered hex.
///
/// The mix is hand-rolled and fully deterministic: no `DefaultHasher`
/// (unspecified across Rust releases), no platform dependence, so
/// fingerprints are comparable across machines and CI runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDigest {
    lo: u64,
    hi: u64,
    count: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        TraceDigest {
            lo: 0x9e37_79b9_7f4a_7c15,
            hi: 0xc2b2_ae3d_27d4_eb4f,
            count: 0,
        }
    }
}

fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

impl TraceDigest {
    /// Folds one word into both lanes.
    #[inline]
    fn mix(&mut self, w: u64) {
        self.lo = (self.lo ^ w)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(29);
        self.hi = (self.hi ^ self.lo)
            .wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            .rotate_left(31);
    }

    /// Folds one canonical event.
    #[inline]
    pub fn fold_event(&mut self, e: &CanonEvent) {
        self.count += 1;
        self.mix(e.at_nanos);
        self.mix(e.seq);
        self.mix(u64::from(e.node) ^ (e.kind << 32));
        // Sentinel 0 for "no sender" keeps NodeId(0) distinguishable.
        self.mix(e.from.map(|n| u64::from(n.0) + 1).unwrap_or(0));
        self.mix(e.bytes);
        match e.tag {
            Some(t) => {
                self.mix(u64::from(t.kind) | (1 << 63));
                self.mix(t.a);
                self.mix(t.b);
            }
            None => {
                self.mix(0);
                self.mix(0);
                self.mix(0);
            }
        }
    }

    /// Events folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The finalized fingerprint as 32 lowercase hex chars.
    ///
    /// Finalization copies the state, so the digest can keep folding — the
    /// fingerprint is a pure function of the events folded so far.
    pub fn fingerprint(&self) -> String {
        let mut d = self.clone();
        d.mix(d.count);
        let lo = avalanche(d.lo ^ d.hi.rotate_left(17));
        let hi = avalanche(d.hi ^ lo);
        format!("{lo:016x}{hi:016x}")
    }
}

/// A full event capture streaming one JSON line per canonical event.
///
/// Lines are hand-formatted (deterministic field order, no float formatting)
/// so captures of identical runs are byte-identical and diffable with
/// `trace_diff`. Write errors are latched and reported at
/// [`TraceCapture::finish`] rather than panicking mid-run.
#[derive(Debug)]
pub struct TraceCapture {
    writer: BufWriter<File>,
    path: PathBuf,
    events: u64,
    failed: Option<io::Error>,
}

impl TraceCapture {
    /// Starts a capture at `path`, creating parent directories.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<TraceCapture> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(TraceCapture {
            writer: BufWriter::new(File::create(&path)?),
            path,
            events: 0,
            failed: None,
        })
    }

    #[inline]
    pub(crate) fn record(&mut self, e: &CanonEvent) {
        if self.failed.is_some() {
            return;
        }
        self.events += 1;
        let res = (|| -> io::Result<()> {
            write!(
                self.writer,
                "{{\"t\":{},\"seq\":{},\"node\":{},\"kind\":\"{}\"",
                e.at_nanos, e.seq, e.node, CANON_KINDS[e.kind as usize]
            )?;
            if let Some(f) = e.from {
                write!(self.writer, ",\"from\":{}", f.0)?;
            }
            write!(self.writer, ",\"bytes\":{}", e.bytes)?;
            if let Some(t) = e.tag {
                write!(self.writer, ",\"tag\":[{},{},{}]", t.kind, t.a, t.b)?;
            }
            self.writer.write_all(b"}\n")
        })();
        if let Err(err) = res {
            self.failed = Some(err);
        }
    }

    /// Where the capture is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Flushes and closes the capture, returning its path (or the first
    /// write error encountered).
    pub fn finish(mut self) -> io::Result<PathBuf> {
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.path)
    }
}

/// What kind of engine event a trace entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A node's `on_start` ran.
    Start,
    /// A message was delivered (`from`, `bytes` populated).
    Deliver,
    /// A timer fired (`tag` populated).
    Timer,
    /// A message was dropped by the fault plan (`from`, `bytes` populated).
    Drop,
    /// A node crashed or halted.
    Halt,
}

/// One recorded engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Engine-wide scheduling sequence number (ties in `at` break by `seq`).
    pub seq: u64,
    /// The node the event happened on (the receiver, for deliveries).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
    /// Sender, for deliveries and drops.
    pub from: Option<NodeId>,
    /// Wire size, for deliveries and drops.
    pub bytes: usize,
    /// Tag, for timer firings.
    pub tag: Option<TimerTag>,
}

/// A bounded recorder of engine events.
///
/// # Examples
///
/// ```
/// use predis_sim::prelude::*;
///
/// #[derive(Debug)]
/// struct Quiet;
/// impl Actor<Ping> for Quiet {
///     fn on_message(&mut self, _: &mut Context<'_, Ping>, _: NodeId, _: Ping) {}
/// }
/// #[derive(Debug, Clone)]
/// struct Ping;
/// impl Payload for Ping {
///     fn wire_size(&self) -> usize { 8 }
/// }
///
/// let net = Network::new(LatencyModel::lan(), SimDuration::ZERO);
/// let mut sim: Sim<Ping> = Sim::new(1, net);
/// sim.enable_trace(128);
/// let a = sim.add_node(LinkConfig::paper_default(), Box::new(Quiet), SimTime::ZERO);
/// let b = sim.add_node(LinkConfig::paper_default(), Box::new(Quiet), SimTime::ZERO);
/// sim.inject(b, a, Ping, SimTime::from_millis(1));
/// sim.run_until(SimTime::from_secs(1));
/// let trace = sim.trace().unwrap();
/// assert_eq!(trace.deliveries, 1);
/// assert!(trace.render().contains("<-"));
/// ```
#[derive(Debug)]
pub struct Trace {
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    /// Events recorded since the start (never truncated).
    pub total: u64,
    /// Deliveries recorded.
    pub deliveries: u64,
    /// Timer firings recorded.
    pub timers: u64,
    /// Fault-plan drops recorded.
    pub drops: u64,
    /// Total delivered bytes.
    pub delivered_bytes: u64,
}

impl Trace {
    /// A recorder keeping the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Trace {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            total: 0,
            deliveries: 0,
            timers: 0,
            drops: 0,
            delivered_bytes: 0,
        }
    }

    pub(crate) fn record(&mut self, event: TraceEvent) {
        self.total += 1;
        match event.kind {
            TraceKind::Deliver => {
                self.deliveries += 1;
                self.delivered_bytes += event.bytes as u64;
            }
            TraceKind::Timer => self.timers += 1,
            TraceKind::Drop => self.drops += 1,
            _ => {}
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Retained events involving `node` (as receiver).
    pub fn events_on(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter().filter(move |e| e.node == node)
    }

    /// Number of retained events (≤ capacity).
    pub fn retained(&self) -> usize {
        self.ring.len()
    }

    /// Renders the retained events as a human-readable log.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.ring {
            let line = match e.kind {
                TraceKind::Start => format!("{} {} START\n", e.at, e.node),
                TraceKind::Deliver => format!(
                    "{} {} <- {} ({} B)\n",
                    e.at,
                    e.node,
                    e.from.map(|n| n.to_string()).unwrap_or_default(),
                    e.bytes
                ),
                TraceKind::Timer => format!(
                    "{} {} TIMER kind={}\n",
                    e.at,
                    e.node,
                    e.tag.map(|t| t.kind).unwrap_or_default()
                ),
                TraceKind::Drop => format!(
                    "{} {} DROPPED from {} ({} B)\n",
                    e.at,
                    e.node,
                    e.from.map(|n| n.to_string()).unwrap_or_default(),
                    e.bytes
                ),
                TraceKind::Halt => format!("{} {} HALT\n", e.at, e.node),
            };
            out.push_str(&line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, at_ms: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_millis(at_ms),
            seq: at_ms,
            node: NodeId(1),
            kind,
            from: Some(NodeId(0)),
            bytes: 100,
            tag: Some(TimerTag::of_kind(7)),
        }
    }

    #[test]
    fn counters_never_truncate() {
        let mut t = Trace::with_capacity(2);
        for i in 0..10 {
            t.record(ev(TraceKind::Deliver, i));
        }
        assert_eq!(t.total, 10);
        assert_eq!(t.deliveries, 10);
        assert_eq!(t.delivered_bytes, 1000);
        assert_eq!(t.retained(), 2);
        // Ring keeps the newest.
        let kept: Vec<u64> = t.events().map(|e| e.at.as_nanos() / 1_000_000).collect();
        assert_eq!(kept, vec![8, 9]);
    }

    #[test]
    fn wraparound_keeps_per_kind_counters_exact() {
        // Interleave kinds far past the ring capacity: retained events lose
        // the old entries but every per-kind counter stays exact.
        let mut t = Trace::with_capacity(3);
        let (mut deliver, mut timer, mut drop) = (0u64, 0u64, 0u64);
        for i in 0..1000u64 {
            let kind = match i % 3 {
                0 => {
                    deliver += 1;
                    TraceKind::Deliver
                }
                1 => {
                    timer += 1;
                    TraceKind::Timer
                }
                _ => {
                    drop += 1;
                    TraceKind::Drop
                }
            };
            t.record(ev(kind, i));
        }
        assert_eq!(t.retained(), 3);
        assert_eq!(t.total, 1000);
        assert_eq!((t.deliveries, t.timers, t.drops), (deliver, timer, drop));
        assert_eq!(t.delivered_bytes, deliver * 100);
        // The ring holds exactly the newest three timestamps.
        let kept: Vec<u64> = t.events().map(|e| e.at.as_nanos() / 1_000_000).collect();
        assert_eq!(kept, vec![997, 998, 999]);
    }

    #[test]
    fn kind_counters() {
        let mut t = Trace::with_capacity(16);
        t.record(ev(TraceKind::Deliver, 1));
        t.record(ev(TraceKind::Timer, 2));
        t.record(ev(TraceKind::Drop, 3));
        t.record(ev(TraceKind::Start, 0));
        assert_eq!((t.deliveries, t.timers, t.drops), (1, 1, 1));
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::with_capacity(8);
        t.record(ev(TraceKind::Deliver, 1));
        t.record(ev(TraceKind::Timer, 2));
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("<- n0 (100 B)"));
        assert!(text.contains("TIMER kind=7"));
    }

    #[test]
    fn events_on_filters_by_node() {
        let mut t = Trace::with_capacity(8);
        t.record(ev(TraceKind::Deliver, 1));
        let mut other = ev(TraceKind::Deliver, 2);
        other.node = NodeId(5);
        t.record(other);
        assert_eq!(t.events_on(NodeId(1)).count(), 1);
        assert_eq!(t.events_on(NodeId(5)).count(), 1);
        assert_eq!(t.events_on(NodeId(9)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Trace::with_capacity(0);
    }

    /// A minimal canonical event for digest tests.
    fn bare(at_nanos: u64, seq: u64) -> CanonEvent {
        CanonEvent {
            at_nanos,
            seq,
            node: 0,
            kind: 1,
            from: None,
            bytes: 8,
            tag: None,
        }
    }

    fn canon_stream() -> Vec<CanonEvent> {
        (0..8u64)
            .map(|i| CanonEvent {
                at_nanos: 1_000_000 * i,
                seq: i,
                node: (i % 3) as u32,
                kind: i % 5,
                from: Some(NodeId((i % 2) as u32)),
                bytes: 64 + i,
                tag: Some(TimerTag::new(i as u32, i * 7, i * 13)),
            })
            .collect()
    }

    fn digest_of(events: &[CanonEvent]) -> String {
        let mut d = TraceDigest::default();
        for e in events {
            d.fold_event(e);
        }
        d.fingerprint()
    }

    #[test]
    fn fingerprint_is_deterministic_across_reruns() {
        let events = canon_stream();
        assert_eq!(digest_of(&events), digest_of(&events));
        assert_eq!(digest_of(&events).len(), 32);
        assert_ne!(digest_of(&events), digest_of(&[]));
        // Finalization is a pure function of the folded prefix: rendering
        // the fingerprint does not disturb further folding.
        let mut d = TraceDigest::default();
        d.fold_event(&bare(1, 1));
        let early = d.fingerprint();
        assert_eq!(early, d.fingerprint());
        d.fold_event(&bare(2, 2));
        assert_ne!(early, d.fingerprint());
    }

    #[test]
    fn fingerprint_changes_when_any_single_field_is_perturbed() {
        let base = canon_stream();
        let reference = digest_of(&base);
        // Each mutation tweaks exactly one field of one event.
        type Mutator = fn(&mut CanonEvent);
        let mutators: Vec<(&str, Mutator)> = vec![
            ("at", |e| e.at_nanos += 1),
            ("seq", |e| e.seq += 1),
            ("node", |e| e.node += 1),
            ("kind", |e| e.kind = (e.kind + 1) % 5),
            ("from-value", |e| {
                e.from = Some(NodeId(e.from.unwrap().0 + 1))
            }),
            ("from-absent", |e| e.from = None),
            ("bytes", |e| e.bytes += 1),
            ("tag-a", |e| {
                let t = e.tag.unwrap();
                e.tag = Some(TimerTag::new(t.kind, t.a + 1, t.b));
            }),
            ("tag-b", |e| {
                let t = e.tag.unwrap();
                e.tag = Some(TimerTag::new(t.kind, t.a, t.b + 1));
            }),
            ("tag-absent", |e| e.tag = None),
        ];
        for idx in 0..base.len() {
            for (name, m) in &mutators {
                let mut perturbed = base.clone();
                m(&mut perturbed[idx]);
                assert_ne!(
                    digest_of(&perturbed),
                    reference,
                    "perturbing {name} of event {idx} must change the fingerprint"
                );
            }
            let mut perturbed = base.clone();
            let t = perturbed[idx].tag.unwrap();
            perturbed[idx].tag = Some(TimerTag::new(t.kind + 1, t.a, t.b));
            assert_ne!(
                digest_of(&perturbed),
                reference,
                "perturbing tag kind of event {idx} must change the fingerprint"
            );
        }
        // Reordering two events (same multiset) also diverges.
        let mut swapped = base.clone();
        swapped.swap(2, 5);
        assert_ne!(digest_of(&swapped), reference);
    }

    #[test]
    fn capture_writes_deterministic_jsonl() {
        let dir = std::env::temp_dir().join(format!("predis-trace-test-{}", std::process::id()));
        let path = dir.join("unit.trace.jsonl");
        let mut cap = TraceCapture::create(&path).expect("create capture");
        cap.record(&CanonEvent {
            at_nanos: 1_000,
            seq: 0,
            node: 2,
            kind: 1,
            from: Some(NodeId(0)),
            bytes: 512,
            tag: None,
        });
        cap.record(&CanonEvent {
            at_nanos: 2_000,
            seq: 1,
            node: 2,
            kind: 2,
            from: None,
            bytes: 0,
            tag: Some(TimerTag::new(3, 7, 0)),
        });
        cap.record(&CanonEvent {
            at_nanos: 3_000,
            seq: 2,
            node: 0,
            kind: 0,
            from: None,
            bytes: 0,
            tag: None,
        });
        assert_eq!(cap.events(), 3);
        let written = cap.finish().expect("finish");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(
            text,
            "{\"t\":1000,\"seq\":0,\"node\":2,\"kind\":\"deliver\",\"from\":0,\"bytes\":512}\n\
             {\"t\":2000,\"seq\":1,\"node\":2,\"kind\":\"timer\",\"bytes\":0,\"tag\":[3,7,0]}\n\
             {\"t\":3000,\"seq\":2,\"node\":0,\"kind\":\"start\",\"bytes\":0}\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
