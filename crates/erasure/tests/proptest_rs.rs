//! Property tests: Reed-Solomon recovery over random blobs and loss
//! patterns at the paper's code rates.

use predis_erasure::ReedSolomon;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any-k-of-n: for random data and any random survivor set of size >= k,
    /// reconstruction returns the original blob.
    #[test]
    fn roundtrip_under_random_loss(
        blob in proptest::collection::vec(any::<u8>(), 1..4096),
        f in 1usize..5,
        loss_seed in any::<u64>(),
    ) {
        let n = 3 * f + 1;
        let k = n - f;
        let rs = ReedSolomon::new(k, n).unwrap();
        let shards = rs.encode_blob(&blob);
        prop_assert!(rs.verify(&shards).unwrap());

        // Deterministically pick exactly f shards to lose.
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let mut state = loss_seed | 1;
        let mut lost = 0;
        while lost < f {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let idx = (state >> 33) as usize % n;
            if received[idx].is_some() {
                received[idx] = None;
                lost += 1;
            }
        }
        let out = rs.decode_blob(&mut received, blob.len()).unwrap();
        prop_assert_eq!(out, blob);
    }

    /// Corrupting any single byte of any shard is caught by verify().
    #[test]
    fn verify_catches_any_single_corruption(
        blob in proptest::collection::vec(any::<u8>(), 8..512),
        shard_idx in 0usize..8,
        byte_sel in any::<u16>(),
        flip in 1u8..=255,
    ) {
        let rs = ReedSolomon::new(6, 8).unwrap();
        let mut shards = rs.encode_blob(&blob);
        let shard = shard_idx % shards.len();
        let byte = byte_sel as usize % shards[shard].len();
        shards[shard][byte] ^= flip;
        prop_assert!(!rs.verify(&shards).unwrap());
    }

    /// Round-trips pinned to the shard lengths where byte-loop kernels
    /// break: 0-length (degenerate, encode_blob clamps to 1), 1, and the
    /// 63/64/65 straddle of a 64-byte unroll/SIMD boundary. The blob
    /// length is chosen as `shard_len * k - trim` so the final shard is
    /// partially padded.
    #[test]
    fn roundtrip_at_odd_shard_lengths(
        shard_sel in 0usize..5,
        trim in 0usize..4,
        fill in any::<u8>(),
        f in 1usize..4,
        loss_seed in any::<u64>(),
    ) {
        let shard_len = [0usize, 1, 63, 64, 65][shard_sel];
        let n = 3 * f + 1;
        let k = n - f;
        let rs = ReedSolomon::new(k, n).unwrap();
        let blob_len = (shard_len * k).saturating_sub(trim.min(shard_len));
        let blob: Vec<u8> = (0..blob_len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(fill))
            .collect();
        let shards = rs.encode_blob(&blob);
        prop_assert_eq!(shards[0].len(), rs.stripe_len(blob.len()));
        prop_assert!(rs.verify(&shards).unwrap());

        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        let mut state = loss_seed | 1;
        let mut lost = 0;
        while lost < f {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let idx = (state >> 33) as usize % n;
            if received[idx].is_some() {
                received[idx] = None;
                lost += 1;
            }
        }
        let out = rs.decode_blob(&mut received, blob.len()).unwrap();
        prop_assert_eq!(out, blob);
    }

    /// Reconstruction is agnostic to *which* k shards survive: any two
    /// survivor sets give the same data shards.
    #[test]
    fn survivor_set_does_not_matter(
        blob in proptest::collection::vec(any::<u8>(), 1..1024),
        a in 0usize..10, b in 0usize..10,
    ) {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let shards = rs.encode_blob(&blob);
        let drop_two = |x: usize, y: usize| {
            let mut r: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            r[x % 5] = None;
            r[(y % 4 + x % 5 + 1) % 5] = None;
            rs.decode_blob(&mut r, blob.len()).unwrap()
        };
        prop_assert_eq!(drop_two(a, b), drop_two(b.wrapping_add(2), a.wrapping_add(3)));
    }
}
