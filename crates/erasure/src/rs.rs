//! Systematic Reed-Solomon erasure coding.
//!
//! Multi-Zone encodes every bundle into `n = n_c` stripes such that any
//! `k = n_c − f` reconstruct the bundle (Section IV-D of the paper). The
//! codec is systematic: the first `k` stripes are the data itself, the
//! remaining `n − k` are parity, exactly like the Backblaze JavaReedSolomon
//! library the paper's evaluation uses.
//!
//! The encoding matrix is a Vandermonde matrix normalised so its top `k`
//! rows are the identity (multiply by the inverse of the top square), which
//! preserves the any-k-rows-invertible property.

use std::error::Error;
use std::fmt;

use crate::gf256::MulTable;
use crate::matrix::Matrix;

/// Errors returned by [`ReedSolomon`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// `data_shards` or `total_shards` out of the supported range.
    BadShardCounts {
        /// Requested number of data shards.
        data: usize,
        /// Requested total number of shards.
        total: usize,
    },
    /// Shards passed to encode/reconstruct have inconsistent lengths.
    ShardLengthMismatch,
    /// The number of shard slots differs from the codec's `total_shards`.
    WrongShardSlots {
        /// Number of slots the caller passed.
        got: usize,
        /// Number of slots the codec expects.
        expected: usize,
    },
    /// Fewer than `data_shards` shards are present: reconstruction is
    /// impossible.
    NotEnoughShards {
        /// Number of shards present.
        present: usize,
        /// Number of shards required.
        required: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadShardCounts { data, total } => write!(
                f,
                "invalid shard counts: {data} data of {total} total (need 0 < data <= total <= 255)"
            ),
            CodecError::ShardLengthMismatch => write!(f, "shards have inconsistent lengths"),
            CodecError::WrongShardSlots { got, expected } => {
                write!(f, "got {got} shard slots, codec expects {expected}")
            }
            CodecError::NotEnoughShards { present, required } => {
                write!(f, "only {present} shards present, {required} required")
            }
        }
    }
}

impl Error for CodecError {}

/// A systematic Reed-Solomon codec with fixed shard counts.
///
/// # Examples
///
/// ```
/// use predis_erasure::ReedSolomon;
///
/// // n_c = 4 consensus nodes, f = 1: any 3 of 4 stripes reconstruct.
/// let rs = ReedSolomon::new(3, 4)?;
/// let data = b"predis bundle payload bytes!".to_vec();
/// let stripes = rs.encode_blob(&data);
/// let mut received: Vec<Option<Vec<u8>>> =
///     stripes.into_iter().map(Some).collect();
/// received[1] = None; // one stripe lost
/// let recovered = rs.decode_blob(&mut received, data.len())?;
/// assert_eq!(recovered, data);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_shards: usize,
    total_shards: usize,
    /// `total x data` encoding matrix; top `data` rows are the identity.
    encode_matrix: Matrix,
    /// Split-nibble multiplication tables for the parity rows of
    /// `encode_matrix` (row-major, `parity_shards x data_shards`), built
    /// once at construction and reused by every encode.
    parity_tables: Vec<MulTable>,
}

impl ReedSolomon {
    /// Creates a codec producing `total_shards` shards of which any
    /// `data_shards` reconstruct.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadShardCounts`] unless
    /// `0 < data_shards <= total_shards <= 255`.
    pub fn new(data_shards: usize, total_shards: usize) -> Result<ReedSolomon, CodecError> {
        if data_shards == 0 || data_shards > total_shards || total_shards > 255 {
            return Err(CodecError::BadShardCounts {
                data: data_shards,
                total: total_shards,
            });
        }
        let vm = Matrix::vandermonde(total_shards, data_shards);
        let top = vm.select_rows(&(0..data_shards).collect::<Vec<_>>());
        let top_inv = top.inverse().expect("vandermonde top square invertible");
        let encode_matrix = vm.mul(&top_inv);
        let parity_tables = (data_shards..total_shards)
            .flat_map(|r| (0..data_shards).map(move |c| (r, c)))
            .map(|(r, c)| MulTable::new(encode_matrix[(r, c)]))
            .collect();
        Ok(ReedSolomon {
            data_shards,
            total_shards,
            encode_matrix,
            parity_tables,
        })
    }

    /// Number of data shards (`k`).
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Total shards (`n`).
    pub fn total_shards(&self) -> usize {
        self.total_shards
    }

    /// Number of parity shards (`n − k`).
    pub fn parity_shards(&self) -> usize {
        self.total_shards - self.data_shards
    }

    /// Encodes `data_shards` equal-length shards, returning all
    /// `total_shards` shards (data shards first, verbatim).
    ///
    /// # Errors
    ///
    /// [`CodecError::WrongShardSlots`] if the slice length differs from
    /// `data_shards`; [`CodecError::ShardLengthMismatch`] if lengths differ.
    pub fn encode(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CodecError> {
        if data.len() != self.data_shards {
            return Err(CodecError::WrongShardSlots {
                got: data.len(),
                expected: self.data_shards,
            });
        }
        let len = data[0].len();
        if data.iter().any(|s| s.len() != len) {
            return Err(CodecError::ShardLengthMismatch);
        }
        let mut shards: Vec<Vec<u8>> = data.to_vec();
        for p in 0..self.parity_shards() {
            let mut parity = vec![0u8; len];
            for (c, d) in data.iter().enumerate() {
                self.parity_tables[p * self.data_shards + c].mul_slice_xor(d, &mut parity);
            }
            shards.push(parity);
        }
        Ok(shards)
    }

    /// Splits a blob into `data_shards` equal shards (zero-padded) and
    /// encodes. The shard length is `ceil(len / data_shards)`.
    pub fn encode_blob(&self, blob: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = blob.len().div_ceil(self.data_shards).max(1);
        let mut data = Vec::with_capacity(self.data_shards);
        for i in 0..self.data_shards {
            let start = (i * shard_len).min(blob.len());
            let end = ((i + 1) * shard_len).min(blob.len());
            let mut shard = blob[start..end].to_vec();
            shard.resize(shard_len, 0);
            data.push(shard);
        }
        self.encode(&data).expect("shards constructed consistently")
    }

    /// Reconstructs all missing shards in place. On success every slot is
    /// `Some` and data shards hold the original content.
    ///
    /// # Errors
    ///
    /// [`CodecError::WrongShardSlots`], [`CodecError::ShardLengthMismatch`],
    /// or [`CodecError::NotEnoughShards`] if fewer than `data_shards`
    /// survive.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodecError> {
        if shards.len() != self.total_shards {
            return Err(CodecError::WrongShardSlots {
                got: shards.len(),
                expected: self.total_shards,
            });
        }
        let present: Vec<usize> = (0..self.total_shards)
            .filter(|&i| shards[i].is_some())
            .collect();
        if present.len() < self.data_shards {
            return Err(CodecError::NotEnoughShards {
                present: present.len(),
                required: self.data_shards,
            });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().expect("present").len() != len)
        {
            return Err(CodecError::ShardLengthMismatch);
        }
        if present.len() == self.total_shards {
            return Ok(());
        }
        // Solve for the data shards from any k surviving rows.
        let rows: Vec<usize> = present[..self.data_shards].to_vec();
        let sub = self.encode_matrix.select_rows(&rows);
        let decode = sub
            .inverse()
            .expect("any k rows of the encode matrix invert");
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.data_shards);
        let mut row_tables = Vec::with_capacity(self.data_shards);
        for r in 0..self.data_shards {
            // Nibble tables for this decode row, built once and shared by
            // every byte of the row's column passes.
            row_tables.clear();
            row_tables.extend((0..rows.len()).map(|c| MulTable::new(decode[(r, c)])));
            let mut shard = vec![0u8; len];
            for (c, &row_idx) in rows.iter().enumerate() {
                let src = shards[row_idx].as_ref().expect("present");
                row_tables[c].mul_slice_xor(src, &mut shard);
            }
            data.push(shard);
        }
        // Re-encode to fill every missing slot (data and parity alike).
        let full = self.encode(&data).expect("valid shards");
        for (i, slot) in shards.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(full[i].clone());
            }
        }
        // Restore recovered data shards verbatim.
        for i in 0..self.data_shards {
            if shards[i].is_none() {
                shards[i] = Some(data[i].clone());
            }
        }
        Ok(())
    }

    /// Reconstructs and reassembles a blob of `blob_len` bytes previously
    /// split by [`ReedSolomon::encode_blob`].
    ///
    /// # Errors
    ///
    /// Propagates [`ReedSolomon::reconstruct`] errors.
    pub fn decode_blob(
        &self,
        shards: &mut [Option<Vec<u8>>],
        blob_len: usize,
    ) -> Result<Vec<u8>, CodecError> {
        self.reconstruct(shards)?;
        let mut blob = Vec::with_capacity(blob_len);
        for shard in shards.iter().take(self.data_shards) {
            blob.extend_from_slice(shard.as_ref().expect("reconstructed"));
        }
        blob.truncate(blob_len);
        Ok(blob)
    }

    /// The stripe length [`ReedSolomon::encode_blob`] produces for a blob of
    /// `blob_len` bytes.
    pub fn stripe_len(&self, blob_len: usize) -> usize {
        blob_len.div_ceil(self.data_shards).max(1)
    }

    /// Checks that the parity shards are consistent with the data shards.
    ///
    /// # Errors
    ///
    /// [`CodecError::WrongShardSlots`] / [`CodecError::ShardLengthMismatch`]
    /// on malformed input.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, CodecError> {
        if shards.len() != self.total_shards {
            return Err(CodecError::WrongShardSlots {
                got: shards.len(),
                expected: self.total_shards,
            });
        }
        let recomputed = self.encode(&shards[..self.data_shards])?;
        Ok(recomputed[self.data_shards..] == shards[self.data_shards..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(4, 6).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 16]).collect();
        let shards = rs.encode(&data).unwrap();
        assert_eq!(shards.len(), 6);
        assert_eq!(&shards[..4], &data[..]);
        assert!(rs.verify(&shards).unwrap());
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let original = blob(100);
        let shards = rs.encode_blob(&original);
        // Try every way of losing 2 of 5 shards.
        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut received: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                received[a] = None;
                received[b] = None;
                let out = rs.decode_blob(&mut received, original.len()).unwrap();
                assert_eq!(out, original, "lost {a},{b}");
                assert!(received.iter().all(Option::is_some));
            }
        }
    }

    #[test]
    fn too_many_losses_fail() {
        let rs = ReedSolomon::new(3, 5).unwrap();
        let shards = rs.encode_blob(&blob(50));
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        received[0] = None;
        received[1] = None;
        received[2] = None;
        assert_eq!(
            rs.reconstruct(&mut received),
            Err(CodecError::NotEnoughShards {
                present: 2,
                required: 3
            })
        );
    }

    #[test]
    fn paper_rate_nc_minus_f_of_nc() {
        // n_c = 3f + 1: (k, n) = (2f+1, 3f+1).
        for f in 1..=5usize {
            let n = 3 * f + 1;
            let k = n - f;
            let rs = ReedSolomon::new(k, n).unwrap();
            let original = blob(997);
            let shards = rs.encode_blob(&original);
            let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            for lost in 0..f {
                received[lost * 2 % n] = None;
            }
            let out = rs.decode_blob(&mut received, original.len()).unwrap();
            assert_eq!(out, original, "f={f}");
        }
    }

    #[test]
    fn corrupted_parity_detected_by_verify() {
        let rs = ReedSolomon::new(4, 6).unwrap();
        let mut shards = rs.encode_blob(&blob(64));
        shards[5][0] ^= 0xff;
        assert!(!rs.verify(&shards).unwrap());
    }

    #[test]
    fn blob_roundtrip_various_sizes() {
        let rs = ReedSolomon::new(6, 8).unwrap();
        for len in [1usize, 5, 6, 7, 48, 100, 1000, 25_600] {
            let original = blob(len);
            let shards = rs.encode_blob(&original);
            assert_eq!(shards[0].len(), rs.stripe_len(len));
            let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            received[3] = None;
            received[7] = None;
            assert_eq!(
                rs.decode_blob(&mut received, len).unwrap(),
                original,
                "len={len}"
            );
        }
    }

    #[test]
    fn k_equals_n_is_plain_splitting() {
        let rs = ReedSolomon::new(4, 4).unwrap();
        let original = blob(64);
        let shards = rs.encode_blob(&original);
        assert_eq!(rs.parity_shards(), 0);
        let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(rs.decode_blob(&mut received, 64).unwrap(), original);
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(10, 300).is_err());
        let err = ReedSolomon::new(0, 4).unwrap_err();
        assert!(err.to_string().contains("invalid shard counts"));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        assert_eq!(
            rs.encode(&[vec![1, 2], vec![3]]),
            Err(CodecError::ShardLengthMismatch)
        );
        assert!(matches!(
            rs.encode(&[vec![1, 2]]),
            Err(CodecError::WrongShardSlots { .. })
        ));
        let mut short: Vec<Option<Vec<u8>>> = vec![Some(vec![0u8; 4]); 3];
        assert!(matches!(
            rs.reconstruct(&mut short),
            Err(CodecError::WrongShardSlots { .. })
        ));
    }
}
