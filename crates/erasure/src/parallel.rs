//! Parallel stripe encoding across chains.
//!
//! A Predis block cuts one bundle per chain, and every bundle is
//! erasure-encoded into `n_c` stripes independently (Section IV-D). The
//! per-bundle encodes share nothing but the immutable codec matrix, so a
//! committee node preparing the stripes of a whole cut can fan them across
//! cores. Encoding is a pure function of the input bytes, so the parallel
//! result is byte-identical to the sequential one, chain by chain.

use predis_parallel::Pool;

use crate::rs::ReedSolomon;

impl ReedSolomon {
    /// Encodes one blob per chain in parallel, returning each chain's full
    /// stripe set in input (chain) order.
    ///
    /// Equivalent to `blobs.iter().map(|b| self.encode_blob(b))` but fanned
    /// over `pool`; the output is deterministic and byte-identical to the
    /// sequential encode regardless of pool width.
    pub fn encode_blobs(&self, blobs: &[Vec<u8>], pool: &Pool) -> Vec<Vec<Vec<u8>>> {
        pool.map(blobs.iter().collect(), |blob| self.encode_blob(blob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(chain: usize, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((i * 31 + chain * 7) % 251) as u8)
            .collect()
    }

    #[test]
    fn parallel_encode_matches_sequential_per_chain() {
        let rs = ReedSolomon::new(3, 4).unwrap();
        let bundles: Vec<Vec<u8>> = (0..16).map(|c| blob(c, 25_600)).collect();
        let sequential: Vec<Vec<Vec<u8>>> = bundles.iter().map(|b| rs.encode_blob(b)).collect();
        for threads in [1, 2, 8] {
            let parallel = rs.encode_blobs(&bundles, &Pool::new(threads));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_stripes_reconstruct_after_losses() {
        let rs = ReedSolomon::new(6, 8).unwrap();
        let bundles: Vec<Vec<u8>> = (0..8).map(|c| blob(c, 1_000 + c)).collect();
        let all = rs.encode_blobs(&bundles, &Pool::new(4));
        for (c, stripes) in all.into_iter().enumerate() {
            let mut received: Vec<Option<Vec<u8>>> = stripes.into_iter().map(Some).collect();
            received[0] = None;
            received[5] = None;
            let out = rs.decode_blob(&mut received, bundles[c].len()).unwrap();
            assert_eq!(out, bundles[c], "chain {c}");
        }
    }

    #[test]
    fn empty_chain_set_is_a_noop() {
        let rs = ReedSolomon::new(2, 3).unwrap();
        assert!(rs.encode_blobs(&[], &Pool::new(4)).is_empty());
    }
}
