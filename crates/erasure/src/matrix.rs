//! Dense matrices over GF(2^8), supporting the operations Reed-Solomon
//! needs: multiplication, sub-matrix extraction, augmented inversion, and
//! Vandermonde construction.

use crate::gf256::Gf;

/// A row-major matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![Gf::ZERO; rows * cols],
        }
    }

    /// The `n`-by-`n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf::ONE;
        }
        m
    }

    /// The `rows`-by-`cols` Vandermonde matrix `V[r][c] = r^c`, whose
    /// square sub-matrices formed from distinct rows are invertible —
    /// the property Reed-Solomon recovery relies on.
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = Gf(r as u8).pow(c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[Gf] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Gf::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] = out[(r, c)] + a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// A new matrix made of the given rows of `self`, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            let (dst_start, src_start) = (i * self.cols, r * self.cols);
            out.data[dst_start..dst_start + self.cols]
                .copy_from_slice(&self.data[src_start..src_start + self.cols]);
        }
        out
    }

    /// The inverse, or `None` if singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| work[(r, col)] != Gf::ZERO)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let scale = work[(col, col)].inv().expect("pivot nonzero");
            work.scale_row(col, scale);
            inv.scale_row(col, scale);
            for r in 0..n {
                if r != col && work[(r, col)] != Gf::ZERO {
                    let factor = work[(r, col)];
                    work.add_scaled_row(col, r, factor);
                    inv.add_scaled_row(col, r, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, s: Gf) {
        for c in 0..self.cols {
            self[(r, c)] = self[(r, c)] * s;
        }
    }

    /// row[dst] += factor * row[src]
    fn add_scaled_row(&mut self, src: usize, dst: usize, factor: Gf) {
        for c in 0..self.cols {
            let v = self[(src, c)] * factor;
            self[(dst, c)] = self[(dst, c)] + v;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf;
    fn index(&self, (r, c): (usize, usize)) -> &Gf {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let v = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(v.mul(&i), v);
        assert_eq!(i.mul(&v), v);
    }

    #[test]
    fn inverse_roundtrip() {
        for n in 1..=8 {
            let v = Matrix::vandermonde(n, n);
            let inv = v.inverse().expect("vandermonde is invertible");
            assert_eq!(v.mul(&inv), Matrix::identity(n), "n={n}");
            assert_eq!(inv.mul(&v), Matrix::identity(n), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut m = Matrix::zero(2, 2);
        m[(0, 0)] = Gf(1);
        m[(0, 1)] = Gf(2);
        m[(1, 0)] = Gf(1);
        m[(1, 1)] = Gf(2);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn vandermonde_square_submatrices_invert() {
        // Any k distinct rows of an n x k Vandermonde form an invertible
        // matrix: this is the erasure-recovery property.
        let v = Matrix::vandermonde(8, 4);
        let row_sets: [[usize; 4]; 5] = [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [0, 2, 4, 6],
            [1, 3, 5, 7],
            [0, 3, 5, 6],
        ];
        for rows in row_sets {
            assert!(
                v.select_rows(&rows).inverse().is_some(),
                "rows {rows:?} should be invertible"
            );
        }
    }

    #[test]
    fn select_rows_copies_in_order() {
        let v = Matrix::vandermonde(5, 3);
        let s = v.select_rows(&[4, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mul_rejects_bad_shapes() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = Matrix::zero(0, 3);
    }
}
