//! # predis-erasure
//!
//! GF(2^8) Reed-Solomon erasure coding, built from scratch for the
//! Multi-Zone dissemination layer: each bundle is encoded into `n_c`
//! stripes of which any `n_c − f` reconstruct it, so a node can decode a
//! bundle from stripes arriving in parallel from different relayers even
//! when `f` of them fail or lie (stripe integrity is checked against the
//! bundle header's stripe Merkle root, see `predis-crypto`).
//!
//! # Examples
//!
//! ```
//! use predis_erasure::ReedSolomon;
//!
//! let rs = ReedSolomon::new(3, 4)?; // n_c = 4, f = 1
//! let bundle_bytes = vec![7u8; 25_600]; // 50 txs x 512 B
//! let stripes = rs.encode_blob(&bundle_bytes);
//! assert_eq!(stripes.len(), 4);
//! # Ok::<(), predis_erasure::CodecError>(())
//! ```

#![warn(missing_docs)]

pub mod gf256;
pub mod matrix;
pub mod parallel;
pub mod rs;

pub use gf256::{Gf, MulTable};
pub use matrix::Matrix;
pub use rs::{CodecError, ReedSolomon};
