//! Arithmetic in GF(2^8) with the AES/Reed-Solomon polynomial `0x11d`.
//!
//! Multiplication uses log/exp tables generated at compile time from the
//! generator element 2, the classical construction used by every practical
//! Reed-Solomon codec (including the Backblaze implementation the paper
//! uses).

/// The field polynomial: x^8 + x^4 + x^3 + x^2 + 1.
pub const POLY: u16 = 0x11d;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Duplicate the table so mul can skip the mod-255 reduction.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();
const EXP: [u8; 512] = TABLES.0;
const LOG: [u8; 256] = TABLES.1;

/// An element of GF(2^8).
///
/// # Examples
///
/// ```
/// use predis_erasure::gf256::Gf;
///
/// let a = Gf(0x53);
/// assert_eq!(a + a, Gf(0)); // characteristic 2: addition is XOR
/// assert_eq!(a * a.inv().unwrap(), Gf(1));
/// assert_eq!(Gf(2) * Gf(0x80), Gf(0x1d)); // reduction by x^8+x^4+x^3+x^2+1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf(pub u8);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// The generator element (2) raised to `power`.
    pub fn generator_pow(power: usize) -> Gf {
        Gf(EXP[power % 255])
    }

    /// The multiplicative inverse, or `None` for zero.
    pub fn inv(self) -> Option<Gf> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    /// Exponentiation by squaring is unnecessary with log tables:
    /// `self^e = exp(log(self) * e mod 255)`.
    pub fn pow(self, e: usize) -> Gf {
        if self.0 == 0 {
            return if e == 0 { Gf::ONE } else { Gf::ZERO };
        }
        let l = LOG[self.0 as usize] as usize;
        Gf(EXP[(l * e) % 255])
    }
}

impl std::ops::Add for Gf {
    type Output = Gf;
    // In GF(2^8) addition *is* XOR; the lint expects integer arithmetic.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }
}

impl std::ops::Sub for Gf {
    type Output = Gf;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0) // addition and subtraction coincide in char 2
    }
}

impl std::ops::Mul for Gf {
    type Output = Gf;
    fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf(0);
        }
        Gf(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }
}

impl std::ops::Div for Gf {
    type Output = Gf;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by inverse
    fn div(self, rhs: Gf) -> Gf {
        let inv = rhs.inv().expect("division by zero in GF(256)");
        self * inv
    }
}

/// Multiplies a byte slice by a scalar in place (the hot loop of encoding).
pub fn mul_slice(scalar: Gf, input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    if scalar.0 == 0 {
        out.fill(0);
        return;
    }
    let ls = LOG[scalar.0 as usize] as usize;
    for (o, &i) in out.iter_mut().zip(input) {
        *o = if i == 0 {
            0
        } else {
            EXP[ls + LOG[i as usize] as usize]
        };
    }
}

/// `out ^= scalar * input`, the accumulate variant of [`mul_slice`].
pub fn mul_slice_xor(scalar: Gf, input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    if scalar.0 == 0 {
        return;
    }
    let ls = LOG[scalar.0 as usize] as usize;
    for (o, &i) in out.iter_mut().zip(input) {
        if i != 0 {
            *o ^= EXP[ls + LOG[i as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) + Gf(a), Gf::ZERO);
            assert_eq!(Gf(a) + Gf::ZERO, Gf(a));
            assert_eq!(Gf(a) - Gf(a), Gf::ZERO);
        }
    }

    #[test]
    fn multiplication_identities() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) * Gf::ONE, Gf(a));
            assert_eq!(Gf(a) * Gf::ZERO, Gf::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        assert_eq!(Gf::ZERO.inv(), None);
        for a in 1..=255u8 {
            let inv = Gf(a).inv().unwrap();
            assert_eq!(Gf(a) * inv, Gf::ONE, "a={a}");
            assert_eq!(Gf(a) / Gf(a), Gf::ONE);
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative_spot() {
        // Exhaustive commutativity; sampled associativity.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf(a) * Gf(b), Gf(b) * Gf(a));
            }
        }
        for a in [1u8, 2, 3, 29, 76, 129, 254, 255] {
            for b in [1u8, 5, 17, 99, 200, 255] {
                for c in [2u8, 7, 31, 127, 255] {
                    assert_eq!((Gf(a) * Gf(b)) * Gf(c), Gf(a) * (Gf(b) * Gf(c)));
                }
            }
        }
    }

    #[test]
    fn distributivity_spot() {
        for a in [1u8, 2, 87, 255] {
            for b in [0u8, 3, 44, 254] {
                for c in [1u8, 9, 100, 255] {
                    assert_eq!(Gf(a) * (Gf(b) + Gf(c)), Gf(a) * Gf(b) + Gf(a) * Gf(c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..255 {
            seen.insert(Gf::generator_pow(i).0);
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 91, 255] {
            let mut acc = Gf::ONE;
            for e in 0..10 {
                assert_eq!(Gf(a).pow(e), acc, "a={a} e={e}");
                acc = acc * Gf(a);
            }
        }
    }

    #[test]
    fn slice_ops_match_scalar_ops() {
        let input: Vec<u8> = (0..=255u8).collect();
        let scalar = Gf(0x1b);
        let mut out = vec![0u8; 256];
        mul_slice(scalar, &input, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(Gf(o), scalar * Gf(input[i]));
        }
        let mut acc = out.clone();
        mul_slice_xor(Gf(0x02), &input, &mut acc);
        for i in 0..256 {
            assert_eq!(Gf(acc[i]), Gf(out[i]) + Gf(0x02) * Gf(input[i]));
        }
        // Zero scalar clears / leaves untouched.
        mul_slice(Gf::ZERO, &input, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf(5) / Gf(0);
    }
}
