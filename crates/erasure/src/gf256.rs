//! Arithmetic in GF(2^8) with the AES/Reed-Solomon polynomial `0x11d`.
//!
//! Multiplication uses log/exp tables generated at compile time from the
//! generator element 2, the classical construction used by every practical
//! Reed-Solomon codec (including the Backblaze implementation the paper
//! uses).

/// The field polynomial: x^8 + x^4 + x^3 + x^2 + 1.
pub const POLY: u16 = 0x11d;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Duplicate the table so mul can skip the mod-255 reduction.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();
const EXP: [u8; 512] = TABLES.0;
const LOG: [u8; 256] = TABLES.1;

/// An element of GF(2^8).
///
/// # Examples
///
/// ```
/// use predis_erasure::gf256::Gf;
///
/// let a = Gf(0x53);
/// assert_eq!(a + a, Gf(0)); // characteristic 2: addition is XOR
/// assert_eq!(a * a.inv().unwrap(), Gf(1));
/// assert_eq!(Gf(2) * Gf(0x80), Gf(0x1d)); // reduction by x^8+x^4+x^3+x^2+1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf(pub u8);

impl Gf {
    /// The additive identity.
    pub const ZERO: Gf = Gf(0);
    /// The multiplicative identity.
    pub const ONE: Gf = Gf(1);

    /// The generator element (2) raised to `power`.
    pub fn generator_pow(power: usize) -> Gf {
        Gf(EXP[power % 255])
    }

    /// The multiplicative inverse, or `None` for zero.
    pub fn inv(self) -> Option<Gf> {
        if self.0 == 0 {
            None
        } else {
            Some(Gf(EXP[255 - LOG[self.0 as usize] as usize]))
        }
    }

    /// Exponentiation by squaring is unnecessary with log tables:
    /// `self^e = exp(log(self) * e mod 255)`.
    pub fn pow(self, e: usize) -> Gf {
        if self.0 == 0 {
            return if e == 0 { Gf::ONE } else { Gf::ZERO };
        }
        let l = LOG[self.0 as usize] as usize;
        Gf(EXP[(l * e) % 255])
    }
}

impl std::ops::Add for Gf {
    type Output = Gf;
    // In GF(2^8) addition *is* XOR; the lint expects integer arithmetic.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0)
    }
}

impl std::ops::Sub for Gf {
    type Output = Gf;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf) -> Gf {
        Gf(self.0 ^ rhs.0) // addition and subtraction coincide in char 2
    }
}

impl std::ops::Mul for Gf {
    type Output = Gf;
    fn mul(self, rhs: Gf) -> Gf {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf(0);
        }
        Gf(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }
}

impl std::ops::Div for Gf {
    type Output = Gf;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // division = multiply by inverse
    fn div(self, rhs: Gf) -> Gf {
        let inv = rhs.inv().expect("division by zero in GF(256)");
        self * inv
    }
}

/// Split high/low-nibble multiplication tables for one fixed scalar — the
/// klauspost/ISA-L construction behind every fast software GF(2^8) kernel.
///
/// `c * b` decomposes over the nibbles of `b`: with `b = hi·16 + lo`,
/// `c·b = c·(hi·16) ⊕ c·lo`, so two 16-entry lookups and one XOR replace
/// the log/exp walk (two table reads, an add, and a zero branch per byte).
/// The 32 bytes live in registers/L1 for the whole slice pass, and the
/// loop body is branch-free.
///
/// # Examples
///
/// ```
/// use predis_erasure::gf256::{Gf, MulTable};
///
/// let t = MulTable::new(Gf(0x1d));
/// assert_eq!(Gf(t.mul(0x80)), Gf(0x1d) * Gf(0x80));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MulTable {
    low: [u8; 16],
    high: [u8; 16],
}

impl MulTable {
    /// Builds the two 16-entry tables for `scalar`.
    pub fn new(scalar: Gf) -> MulTable {
        let mut low = [0u8; 16];
        let mut high = [0u8; 16];
        for i in 0..16u8 {
            low[i as usize] = (scalar * Gf(i)).0;
            high[i as usize] = (scalar * Gf(i << 4)).0;
        }
        MulTable { low, high }
    }

    /// `scalar * b` via two nibble lookups.
    #[inline]
    pub fn mul(&self, b: u8) -> u8 {
        self.low[(b & 0x0f) as usize] ^ self.high[(b >> 4) as usize]
    }

    /// `out = scalar * input` over whole slices.
    pub fn mul_slice(&self, input: &[u8], out: &mut [u8]) {
        debug_assert_eq!(input.len(), out.len());
        for (o, &i) in out.iter_mut().zip(input) {
            *o = self.mul(i);
        }
    }

    /// `out ^= scalar * input`, the accumulate variant used by encoding
    /// and reconstruction inner loops.
    pub fn mul_slice_xor(&self, input: &[u8], out: &mut [u8]) {
        debug_assert_eq!(input.len(), out.len());
        for (o, &i) in out.iter_mut().zip(input) {
            *o ^= self.mul(i);
        }
    }
}

/// Multiplies a byte slice by a scalar in place (the hot loop of encoding).
pub fn mul_slice(scalar: Gf, input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    match scalar.0 {
        0 => out.fill(0),
        1 => out.copy_from_slice(input),
        _ => MulTable::new(scalar).mul_slice(input, out),
    }
}

/// `out ^= scalar * input`, the accumulate variant of [`mul_slice`].
pub fn mul_slice_xor(scalar: Gf, input: &[u8], out: &mut [u8]) {
    debug_assert_eq!(input.len(), out.len());
    match scalar.0 {
        0 => {}
        1 => {
            for (o, &i) in out.iter_mut().zip(input) {
                *o ^= i;
            }
        }
        _ => MulTable::new(scalar).mul_slice_xor(input, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor_and_self_inverse() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) + Gf(a), Gf::ZERO);
            assert_eq!(Gf(a) + Gf::ZERO, Gf(a));
            assert_eq!(Gf(a) - Gf(a), Gf::ZERO);
        }
    }

    #[test]
    fn multiplication_identities() {
        for a in 0..=255u8 {
            assert_eq!(Gf(a) * Gf::ONE, Gf(a));
            assert_eq!(Gf(a) * Gf::ZERO, Gf::ZERO);
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        assert_eq!(Gf::ZERO.inv(), None);
        for a in 1..=255u8 {
            let inv = Gf(a).inv().unwrap();
            assert_eq!(Gf(a) * inv, Gf::ONE, "a={a}");
            assert_eq!(Gf(a) / Gf(a), Gf::ONE);
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative_spot() {
        // Exhaustive commutativity; sampled associativity.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(Gf(a) * Gf(b), Gf(b) * Gf(a));
            }
        }
        for a in [1u8, 2, 3, 29, 76, 129, 254, 255] {
            for b in [1u8, 5, 17, 99, 200, 255] {
                for c in [2u8, 7, 31, 127, 255] {
                    assert_eq!((Gf(a) * Gf(b)) * Gf(c), Gf(a) * (Gf(b) * Gf(c)));
                }
            }
        }
    }

    #[test]
    fn distributivity_spot() {
        for a in [1u8, 2, 87, 255] {
            for b in [0u8, 3, 44, 254] {
                for c in [1u8, 9, 100, 255] {
                    assert_eq!(Gf(a) * (Gf(b) + Gf(c)), Gf(a) * Gf(b) + Gf(a) * Gf(c));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..255 {
            seen.insert(Gf::generator_pow(i).0);
        }
        assert_eq!(seen.len(), 255);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 91, 255] {
            let mut acc = Gf::ONE;
            for e in 0..10 {
                assert_eq!(Gf(a).pow(e), acc, "a={a} e={e}");
                acc = acc * Gf(a);
            }
        }
    }

    #[test]
    fn slice_ops_match_scalar_ops() {
        let input: Vec<u8> = (0..=255u8).collect();
        let scalar = Gf(0x1b);
        let mut out = vec![0u8; 256];
        mul_slice(scalar, &input, &mut out);
        for (i, &o) in out.iter().enumerate() {
            assert_eq!(Gf(o), scalar * Gf(input[i]));
        }
        let mut acc = out.clone();
        mul_slice_xor(Gf(0x02), &input, &mut acc);
        for i in 0..256 {
            assert_eq!(Gf(acc[i]), Gf(out[i]) + Gf(0x02) * Gf(input[i]));
        }
        // Zero scalar clears / leaves untouched.
        mul_slice(Gf::ZERO, &input, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf(5) / Gf(0);
    }

    #[test]
    fn nibble_tables_agree_with_log_exp_mul_exhaustively() {
        // All 256 × 256 products: the split-table kernel must be the same
        // function as the log/exp multiplication.
        for c in 0..=255u8 {
            let table = MulTable::new(Gf(c));
            for b in 0..=255u8 {
                assert_eq!(
                    Gf(table.mul(b)),
                    Gf(c) * Gf(b),
                    "table mul diverged at c={c} b={b}"
                );
            }
        }
    }

    #[test]
    fn slice_kernels_agree_with_scalar_mul_for_every_coefficient() {
        let input: Vec<u8> = (0..=255u8).collect();
        for c in 0..=255u8 {
            let mut out = vec![0xAAu8; 256];
            mul_slice(Gf(c), &input, &mut out);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(Gf(o), Gf(c) * Gf(input[i]), "mul_slice c={c} i={i}");
            }
            let mut acc = vec![0x55u8; 256];
            mul_slice_xor(Gf(c), &input, &mut acc);
            for (i, &a) in acc.iter().enumerate() {
                assert_eq!(
                    Gf(a),
                    Gf(0x55) + Gf(c) * Gf(input[i]),
                    "mul_slice_xor c={c} i={i}"
                );
            }
        }
    }

    #[test]
    fn table_slice_ops_handle_odd_lengths() {
        let table = MulTable::new(Gf(0x8e));
        for len in [0usize, 1, 63, 64, 65] {
            let input: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut out = vec![0u8; len];
            table.mul_slice(&input, &mut out);
            let mut acc = out.clone();
            table.mul_slice_xor(&input, &mut acc);
            for i in 0..len {
                assert_eq!(Gf(out[i]), Gf(0x8e) * Gf(input[i]));
                // x ^ x = 0 in characteristic 2.
                assert_eq!(acc[i], 0, "len={len} i={i}");
            }
        }
    }
}
