//! Tip lists: Predis's replacement for availability certificates.
//!
//! A bundle's tip list records, per chain, the highest bundle height its
//! producer had received when it packed the bundle (Fig. 1 of the paper).
//! Because every honest node keeps producing bundles, tip lists form a
//! continuous stream of acknowledgements: the leader's cut rule reads the
//! newest tip list from each chain to learn which heights the fastest
//! `n_c − f` nodes hold — the role RBC certificates play in Narwhal, at
//! zero extra message cost.

use serde::{Deserialize, Serialize};

use crate::ids::{ChainId, Height};
use crate::wire::{WireSize, U64_WIRE};

/// Per-chain highest-received bundle heights.
///
/// # Examples
///
/// ```
/// use predis_types::{ChainId, Height, TipList};
///
/// let mut tips = TipList::new(4);
/// tips.observe(ChainId(1), Height(6));
/// tips.observe(ChainId(1), Height(5)); // stale observations are ignored
/// assert_eq!(tips.get(ChainId(1)), Height(6));
/// assert_eq!(tips.get(ChainId(0)), Height(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TipList(Vec<Height>);

impl TipList {
    /// A tip list of `n_chains` zeros (nothing received yet).
    pub fn new(n_chains: usize) -> TipList {
        TipList(vec![Height(0); n_chains])
    }

    /// Number of chains tracked.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the list tracks no chains.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The recorded height for `chain` (zero if out of range).
    pub fn get(&self, chain: ChainId) -> Height {
        self.0.get(chain.index()).copied().unwrap_or(Height(0))
    }

    /// Raises the recorded height for `chain` to `h` if higher.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    pub fn observe(&mut self, chain: ChainId, h: Height) {
        let slot = &mut self.0[chain.index()];
        if h > *slot {
            *slot = h;
        }
    }

    /// True if every entry of `self` is `>=` the corresponding entry of
    /// `other` — the monotonicity rule a valid child bundle's tip list must
    /// satisfy relative to its parent's (validity check 3 in §III-A).
    pub fn dominates(&self, other: &TipList) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Pointwise maximum with `other` (used when merging observations).
    pub fn merge(&mut self, other: &TipList) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            if b > a {
                *a = *b;
            }
        }
    }

    /// Iterates `(chain, height)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ChainId, Height)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &h)| (ChainId(i as u32), h))
    }

    /// The heights as a slice.
    pub fn heights(&self) -> &[Height] {
        &self.0
    }
}

impl From<Vec<Height>> for TipList {
    fn from(v: Vec<Height>) -> Self {
        TipList(v)
    }
}

impl WireSize for TipList {
    fn wire_size(&self) -> usize {
        // Heights are small; a varint encoding would be ~2-4 bytes each, but
        // we charge the full 8 to stay conservative.
        self.0.len() * U64_WIRE
    }
}

/// Computes, for one chain, the cut height from the newest acknowledged
/// heights of all `n_c` consensus nodes: the height received by at least
/// `n_c − f` of them (the "(n_c − f)-th largest" order statistic).
///
/// This is the paper's cutting rule (§III-B): the leader may cut a chain at
/// `h'` only if the fastest `n_c − f` nodes (leader included) have received
/// the bundle at `h'`, which guarantees availability from `n_c − 2f ≥ f + 1`
/// honest nodes.
///
/// # Examples
///
/// The paper's Fig. 1: chain 3's bundles are acknowledged at heights
/// `[5, 4, 5, 3]` by the four nodes; with `f = 1` the cut lands on the
/// third-highest acknowledgement.
///
/// ```
/// use predis_types::{quorum_cut_height, Height};
///
/// let acks = [Height(5), Height(4), Height(5), Height(3)];
/// assert_eq!(quorum_cut_height(&acks, 1), Height(4));
/// ```
///
/// # Panics
///
/// Panics if `acked` is empty or `f >= acked.len()`.
pub fn quorum_cut_height(acked: &[Height], f: usize) -> Height {
    assert!(!acked.is_empty(), "need at least one acknowledgement");
    assert!(f < acked.len(), "f must be smaller than the node count");
    let mut sorted = acked.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending
    sorted[acked.len() - f - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_is_monotone() {
        let mut t = TipList::new(3);
        t.observe(ChainId(2), Height(4));
        t.observe(ChainId(2), Height(2));
        assert_eq!(t.get(ChainId(2)), Height(4));
        assert_eq!(t.get(ChainId(0)), Height(0));
        assert_eq!(t.get(ChainId(9)), Height(0)); // out of range reads as 0
    }

    #[test]
    fn dominates_requires_pointwise_geq() {
        let a = TipList::from(vec![Height(5), Height(6), Height(5)]);
        let b = TipList::from(vec![Height(5), Height(5), Height(5)]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
        let short = TipList::from(vec![Height(9)]);
        assert!(!a.dominates(&short)); // mismatched lengths never dominate
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut a = TipList::from(vec![Height(1), Height(7)]);
        let b = TipList::from(vec![Height(3), Height(2)]);
        a.merge(&b);
        assert_eq!(a.heights(), &[Height(3), Height(7)]);
    }

    #[test]
    fn paper_example_cut() {
        // Fig. 1: node 1 is leader among 4 nodes (f = 1). The tip-list
        // matrix gives per-chain acked heights; the cut is the height known
        // to the fastest n_c - f = 3 nodes.
        // Chain 1 acked by nodes [5, 5, 5, 4] -> cut 5.
        assert_eq!(
            quorum_cut_height(&[Height(5), Height(5), Height(5), Height(4)], 1),
            Height(5)
        );
        // Chain 3 acked by [5, 4, 5, 3] -> third largest is 4.
        assert_eq!(
            quorum_cut_height(&[Height(5), Height(4), Height(5), Height(3)], 1),
            Height(4)
        );
    }

    #[test]
    fn cut_with_f_zero_is_minimum() {
        assert_eq!(
            quorum_cut_height(&[Height(9), Height(2), Height(5)], 0),
            Height(2)
        );
    }

    #[test]
    #[should_panic(expected = "smaller than the node count")]
    fn cut_rejects_large_f() {
        quorum_cut_height(&[Height(1)], 1);
    }

    #[test]
    fn wire_size_counts_heights() {
        assert_eq!(TipList::new(4).wire_size(), 32);
    }

    #[test]
    fn iter_yields_pairs() {
        let t = TipList::from(vec![Height(1), Height(2)]);
        let v: Vec<_> = t.iter().collect();
        assert_eq!(v, vec![(ChainId(0), Height(1)), (ChainId(1), Height(2))]);
    }
}
