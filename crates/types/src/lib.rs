//! # predis-types
//!
//! The common vocabulary of the Predis + Multi-Zone data flow framework:
//! transactions, bundles, tip lists, Predis blocks and proposal payloads,
//! plus the wire-size model the bandwidth-accurate simulator charges by.
//!
//! # Examples
//!
//! ```
//! use predis_crypto::{Hash, Keypair, SignerId};
//! use predis_types::{
//!     Bundle, ChainId, ClientId, Height, TipList, Transaction, TxId, WireSize,
//! };
//!
//! // A consensus node packs 50 transactions into a bundle and signs it.
//! let key = Keypair::for_node(SignerId(0));
//! let txs: Vec<Transaction> =
//!     (0..50).map(|i| Transaction::new(TxId(i), ClientId(0), 0)).collect();
//! let bundle = Bundle::build(
//!     ChainId(0), Height(1), Hash::ZERO, TipList::new(4), txs, Hash::ZERO, &key,
//! );
//! assert!(bundle.verify());
//! assert_eq!(bundle.body_size(), 50 * 512);
//! assert!(bundle.header.wire_size() < 300); // headers are tiny
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod bundle;
pub mod ids;
pub mod shared;
pub mod tip_list;
pub mod tx;
pub mod wire;

pub use block::{MicroRef, PredisBlock, ProposalPayload};
pub use bundle::{Bundle, BundleHeader, ConflictProof};
pub use ids::{ChainId, ClientId, Height, SeqNum, TxId, View};
pub use shared::{payload_stats, Shared, SizedBundle, SizedPayload};
pub use tip_list::{quorum_cut_height, TipList};
pub use tx::{tx_leaves, Transaction};
pub use wire::{
    WireSize, DEFAULT_BATCH_SIZE, DEFAULT_BUNDLE_SIZE, DEFAULT_TX_SIZE, FRAME_OVERHEAD, HASH_WIRE,
    SIG_WIRE, U32_WIRE, U64_WIRE,
};
