//! Predis blocks and consensus proposal payloads.
//!
//! A *Predis block* (§III-B) is the proposal an honest leader multicasts: it
//! carries **no transactions**, only per-chain cut heights and the last
//! bundle header of each cut slice. Because bundle headers chain by parent
//! hash, the header at the cut height pins the content of the entire slice
//! (Theorem 3.2), so every voter reconstructs an identical candidate block
//! from its own mempool (Theorem 3.3). Its wire size is `O(n_c)` and does
//! not grow with the transaction volume — the property Fig. 5 measures
//! against Narwhal's and Stratus's digest-list proposals.

use predis_crypto::{Hash, Keypair, Sha256, Signature, SignerId};
use serde::{Deserialize, Serialize};

use crate::ids::{ChainId, Height, View};
use crate::tx::Transaction;
use crate::wire::{WireSize, FRAME_OVERHEAD, HASH_WIRE, SIG_WIRE, U64_WIRE};

/// The constant-size proposal of Predis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredisBlock {
    /// Hash of the parent (previous committed) block.
    pub parent: Hash,
    /// The view/round this block was proposed in.
    pub view: View,
    /// Per chain: the last height already committed (exclusive slice start).
    pub base: Vec<Height>,
    /// Per chain: the cut height (inclusive slice end); `cut[i] >= base[i]`,
    /// equality meaning "no new bundles from that chain this round".
    pub cut: Vec<Height>,
    /// Per chain: the *hash* of the bundle header at `cut[i]`, present iff
    /// `cut[i] > base[i]`. Carrying hashes instead of full headers is what
    /// keeps the block ~32 bytes per chain (the paper's ≤2.5 KB at
    /// `n_c = 80`); voters look the header up in their own mempool.
    pub headers: Vec<Option<Hash>>,
    /// Merkle root over all transactions in the block, in chain order.
    pub tx_root: Hash,
    /// The proposing leader's signature.
    pub signature: Signature,
}

impl PredisBlock {
    /// The digest the leader signs (everything except the signature).
    /// Streams fields into the hasher without intermediate buffers.
    pub fn digest(&self) -> Hash {
        let mut h = Sha256::new();
        h.update(b"predis-block");
        h.update(self.parent.as_bytes());
        h.update(&self.view.0.to_be_bytes());
        h.update(self.tx_root.as_bytes());
        for (i, (b, c)) in self.base.iter().zip(&self.cut).enumerate() {
            h.update(&b.0.to_be_bytes());
            h.update(&c.0.to_be_bytes());
            match &self.headers[i] {
                Some(hd) => h.update(hd.as_bytes()),
                None => h.update(&[0u8]),
            }
        }
        Hash(h.finalize())
    }

    /// The block's identity hash.
    pub fn hash(&self) -> Hash {
        self.digest()
    }

    /// Signs the block in place with the leader's key.
    pub fn sign(&mut self, key: &Keypair) {
        self.signature = key.sign(self.digest());
    }

    /// Verifies the leader signature.
    pub fn verify_signature(&self, leader: SignerId) -> bool {
        self.signature.verify_by(leader, self.digest())
    }

    /// Number of chains the block cuts across.
    pub fn chain_count(&self) -> usize {
        self.cut.len()
    }

    /// Number of bundles the block confirms (sum of slice lengths).
    pub fn bundle_count(&self) -> u64 {
        self.base
            .iter()
            .zip(&self.cut)
            .map(|(b, c)| c.0.saturating_sub(b.0))
            .sum()
    }

    /// True if the block confirms no bundles at all (an empty round).
    pub fn is_empty(&self) -> bool {
        self.bundle_count() == 0
    }

    /// Structural sanity: equal-length vectors, `cut >= base`, headers
    /// present exactly where slices are non-empty and matching their slot.
    pub fn well_formed(&self) -> bool {
        let n = self.cut.len();
        if self.base.len() != n || self.headers.len() != n {
            return false;
        }
        for i in 0..n {
            if self.cut[i] < self.base[i] {
                return false;
            }
            if self.headers[i].is_some() != (self.cut[i] > self.base[i]) {
                return false;
            }
        }
        true
    }
}

impl WireSize for PredisBlock {
    fn wire_size(&self) -> usize {
        // parent + tx_root + view + per chain (cut height + optional header
        // hash) + signature. The base heights are derivable from the parent
        // block and are not serialized.
        let headers: usize = self
            .headers
            .iter()
            .map(|h| 1 + h.as_ref().map_or(0, |_| HASH_WIRE))
            .sum();
        HASH_WIRE * 2 + U64_WIRE + self.cut.len() * U64_WIRE + headers + SIG_WIRE + FRAME_OVERHEAD
    }
}

/// A reference to a certified microblock, as carried in Narwhal-style and
/// Stratus-style proposals. Roughly 32 bytes each on the wire, which is how
/// those proposals grow linearly with transaction volume (the paper's ~30 KB
/// for 1000 identifiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroRef {
    /// Digest of the referenced microblock.
    pub digest: Hash,
    /// Its producer.
    pub producer: ChainId,
    /// Number of transactions inside (metadata for commit accounting).
    pub txs: u32,
}

impl WireSize for MicroRef {
    fn wire_size(&self) -> usize {
        HASH_WIRE
    }
}

/// What a consensus proposal carries, across all evaluated protocols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProposalPayload {
    /// Vanilla PBFT/HotStuff: the full transaction batch travels in the
    /// proposal.
    Batch(Vec<Transaction>),
    /// Predis: the constant-size block.
    Predis(Box<PredisBlock>),
    /// Narwhal/Stratus: a list of certified microblock digests.
    Digests(Vec<MicroRef>),
}

impl ProposalPayload {
    /// Number of transactions the proposal will commit.
    ///
    /// For [`ProposalPayload::Predis`] this is unknown from the payload
    /// alone (it depends on the mempool slices), so callers account for it
    /// at commit time; this method returns 0 in that case.
    pub fn direct_tx_count(&self) -> u64 {
        match self {
            ProposalPayload::Batch(txs) => txs.len() as u64,
            ProposalPayload::Predis(_) => 0,
            ProposalPayload::Digests(refs) => refs.iter().map(|r| r.txs as u64).sum(),
        }
    }

    /// The payload's identity digest.
    pub fn digest(&self) -> Hash {
        match self {
            ProposalPayload::Batch(txs) => {
                let mut h = Sha256::new();
                h.update(b"batch");
                for tx in txs {
                    h.update(tx.hash().as_bytes());
                }
                Hash(h.finalize())
            }
            ProposalPayload::Predis(block) => block.hash(),
            ProposalPayload::Digests(refs) => {
                let mut h = Sha256::new();
                h.update(b"digests");
                for r in refs {
                    h.update(r.digest.as_bytes());
                }
                Hash(h.finalize())
            }
        }
    }
}

impl WireSize for ProposalPayload {
    fn wire_size(&self) -> usize {
        match self {
            ProposalPayload::Batch(txs) => {
                txs.iter().map(WireSize::wire_size).sum::<usize>() + FRAME_OVERHEAD
            }
            ProposalPayload::Predis(block) => block.wire_size(),
            ProposalPayload::Digests(refs) => {
                refs.iter().map(WireSize::wire_size).sum::<usize>() + FRAME_OVERHEAD
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, TxId};
    use crate::tip_list::TipList;
    use crate::Bundle;

    fn header(chain: u32, height: u64) -> Hash {
        let key = Keypair::for_node(SignerId(chain));
        Bundle::build(
            ChainId(chain),
            Height(height),
            Hash::digest(b"parent"),
            TipList::new(4),
            vec![Transaction::new(TxId(1), ClientId(0), 0)],
            Hash::ZERO,
            &key,
        )
        .hash()
    }

    fn block() -> PredisBlock {
        PredisBlock {
            parent: Hash::digest(b"genesis"),
            view: View(3),
            base: vec![Height(4), Height(5), Height(3), Height(3)],
            cut: vec![Height(5), Height(5), Height(4), Height(4)],
            headers: vec![
                Some(header(0, 5)),
                None,
                Some(header(2, 4)),
                Some(header(3, 4)),
            ],
            tx_root: Hash::digest(b"txroot"),
            signature: Signature::default(),
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut b = block();
        let leader = Keypair::for_node(SignerId(0));
        b.sign(&leader);
        assert!(b.verify_signature(SignerId(0)));
        assert!(!b.verify_signature(SignerId(1)));
        b.view = View(4);
        assert!(!b.verify_signature(SignerId(0)));
    }

    #[test]
    fn bundle_count_sums_slices() {
        let b = block();
        // Slices: (4,5]=1, (5,5]=0, (3,4]=1, (3,4]=1.
        assert_eq!(b.bundle_count(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.chain_count(), 4);
    }

    #[test]
    fn well_formedness() {
        let good = block();
        assert!(good.well_formed());
        // Header missing where slice is non-empty.
        let mut bad = good.clone();
        bad.headers[0] = None;
        assert!(!bad.well_formed());
        // Header present where slice is empty.
        let mut bad = good.clone();
        bad.headers[1] = Some(header(1, 5));
        assert!(!bad.well_formed());
        // Cut below base.
        let mut bad = good.clone();
        bad.cut[0] = Height(3);
        assert!(!bad.well_formed());
        // Mismatched vector lengths.
        let mut bad = good.clone();
        bad.base.pop();
        assert!(!bad.well_formed());
    }

    #[test]
    fn predis_block_size_is_constant_in_tx_volume() {
        // The same block maps to arbitrarily many transactions; its wire
        // size depends only on n_c.
        let b = block();
        let size = b.wire_size();
        assert!(
            size < 400,
            "4-chain Predis block should be tiny, got {size}"
        );
        // A batch proposal of 800 txs is ~400 KB by contrast.
        let batch = ProposalPayload::Batch(
            (0..800)
                .map(|i| Transaction::new(TxId(i), ClientId(0), 0))
                .collect(),
        );
        assert!(batch.wire_size() > 400_000);
    }

    #[test]
    fn digest_proposals_grow_linearly() {
        let refs: Vec<MicroRef> = (0..1000)
            .map(|i| MicroRef {
                digest: Hash::digest(&(i as u64).to_be_bytes()),
                producer: ChainId(0),
                txs: 50,
            })
            .collect();
        let p = ProposalPayload::Digests(refs);
        // ~32 KB for 1000 identifiers: the paper's observed ~30 KB.
        assert!((30_000..40_000).contains(&p.wire_size()));
        assert_eq!(p.direct_tx_count(), 50_000);
    }

    #[test]
    fn payload_digests_are_distinct() {
        let a = ProposalPayload::Batch(vec![Transaction::new(TxId(1), ClientId(0), 0)]);
        let b = ProposalPayload::Batch(vec![Transaction::new(TxId(2), ClientId(0), 0)]);
        assert_ne!(a.digest(), b.digest());
        let p = ProposalPayload::Predis(Box::new(block()));
        assert_eq!(p.digest(), block().hash());
    }
}
