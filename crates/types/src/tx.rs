//! Client transactions.
//!
//! The simulator does not execute transaction payloads; a transaction is a
//! sized, identified unit whose journey (submit → bundle → block → commit →
//! reply) is what the experiments measure. Its digest is derived from its
//! identity so Merkle roots are real and collision-checked.

use predis_crypto::Hash;
use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, TxId};
use crate::wire::{WireSize, DEFAULT_TX_SIZE};

/// A client transaction.
///
/// # Examples
///
/// ```
/// use predis_types::{ClientId, Transaction, TxId};
///
/// let tx = Transaction::new(TxId(1), ClientId(0), 0);
/// assert_eq!(tx.size, 512); // the paper's default payload
/// assert_eq!(tx.hash(), Transaction::new(TxId(1), ClientId(0), 99).hash());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique transaction identifier.
    pub id: TxId,
    /// The submitting client.
    pub client: ClientId,
    /// Simulated submit time in nanoseconds (drives latency measurement;
    /// not part of the transaction's identity/digest).
    pub submitted_at_nanos: u64,
    /// Payload size in bytes.
    pub size: u32,
}

impl Transaction {
    /// Creates a transaction with the paper's default 512-byte payload.
    pub fn new(id: TxId, client: ClientId, submitted_at_nanos: u64) -> Transaction {
        Transaction {
            id,
            client,
            submitted_at_nanos,
            size: DEFAULT_TX_SIZE as u32,
        }
    }

    /// Creates a transaction with an explicit payload size.
    pub fn with_size(
        id: TxId,
        client: ClientId,
        submitted_at_nanos: u64,
        size: u32,
    ) -> Transaction {
        Transaction {
            id,
            client,
            submitted_at_nanos,
            size,
        }
    }

    /// The transaction digest (identity only: id + client + size).
    pub fn hash(&self) -> Hash {
        Hash::digest_parts(&[
            b"tx",
            &self.id.0.to_be_bytes(),
            &self.client.0.to_be_bytes(),
            &self.size.to_be_bytes(),
        ])
    }
}

impl WireSize for Transaction {
    fn wire_size(&self) -> usize {
        self.size as usize
    }
}

/// The Merkle-tree leaf digests of a transaction list.
pub fn tx_leaves(txs: &[Transaction]) -> Vec<Hash> {
    txs.iter().map(Transaction::hash).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use predis_crypto::MerkleTree;

    #[test]
    fn hash_ignores_submit_time() {
        let a = Transaction::new(TxId(9), ClientId(2), 100);
        let b = Transaction::new(TxId(9), ClientId(2), 200);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    fn hash_depends_on_identity() {
        let a = Transaction::new(TxId(1), ClientId(0), 0);
        assert_ne!(a.hash(), Transaction::new(TxId(2), ClientId(0), 0).hash());
        assert_ne!(a.hash(), Transaction::new(TxId(1), ClientId(1), 0).hash());
        assert_ne!(
            a.hash(),
            Transaction::with_size(TxId(1), ClientId(0), 0, 100).hash()
        );
    }

    #[test]
    fn wire_size_is_payload_size() {
        assert_eq!(Transaction::new(TxId(0), ClientId(0), 0).wire_size(), 512);
        assert_eq!(
            Transaction::with_size(TxId(0), ClientId(0), 0, 256).wire_size(),
            256
        );
    }

    #[test]
    fn leaves_feed_merkle_roots() {
        let txs: Vec<Transaction> = (0..4)
            .map(|i| Transaction::new(TxId(i), ClientId(0), 0))
            .collect();
        let root = MerkleTree::from_leaves(tx_leaves(&txs)).root();
        let mut reordered = txs.clone();
        reordered.swap(0, 1);
        assert_ne!(root, MerkleTree::from_leaves(tx_leaves(&reordered)).root());
    }
}
