//! Identifier newtypes shared across the framework.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a bundle chain — equal to the index of the consensus node that
/// produces it (every consensus node owns exactly one chain).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChainId(pub u32);

/// Height of a bundle within its chain. Height 0 is "nothing"; the first
/// real bundle of every chain has height 1 and parent [`predis_crypto::Hash::ZERO`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Height(pub u64);

/// A consensus view (PBFT) or round (HotStuff).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct View(pub u64);

/// A consensus sequence number (the slot a proposal commits into).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNum(pub u64);

/// A client-assigned transaction identifier, unique per run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxId(pub u64);

/// Identifier of a submitting client.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl Height {
    /// The height just above this one.
    pub const fn next(self) -> Height {
        Height(self.0 + 1)
    }

    /// The height just below, saturating at zero.
    pub const fn prev(self) -> Height {
        Height(self.0.saturating_sub(1))
    }
}

impl ChainId {
    /// The chain id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl View {
    /// The following view.
    pub const fn next(self) -> View {
        View(self.0 + 1)
    }
}

impl SeqNum {
    /// The following sequence number.
    pub const fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Display for ChainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chain{}", self.0)
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq{}", self.0)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_next_prev() {
        assert_eq!(Height(0).next(), Height(1));
        assert_eq!(Height(3).prev(), Height(2));
        assert_eq!(Height(0).prev(), Height(0));
    }

    #[test]
    fn displays() {
        assert_eq!(ChainId(2).to_string(), "chain2");
        assert_eq!(Height(5).to_string(), "h5");
        assert_eq!(View(1).to_string(), "v1");
        assert_eq!(SeqNum(9).to_string(), "seq9");
        assert_eq!(TxId(3).to_string(), "tx3");
        assert_eq!(ClientId(4).to_string(), "client4");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Height(2) < Height(10));
        assert!(View(1).next() > View(1));
        assert_eq!(SeqNum(1).next(), SeqNum(2));
    }
}
