//! Bundles: the unit of Predis's pre-distribution.
//!
//! Every consensus node continuously packs client transactions into bundles
//! and multicasts them (§III-A). A bundle is structured like a miniature
//! block: its header carries the parent hash (forming one chain per
//! producer), the producer's tip list, the transaction Merkle root, the
//! stripe Merkle root (for Multi-Zone erasure dissemination), and the
//! producer's signature.

use predis_crypto::{Hash, Keypair, MerkleTree, Sha256, Signature, SignerId};
use serde::{Deserialize, Serialize};

use crate::ids::{ChainId, Height};
use crate::tip_list::TipList;
use crate::tx::{tx_leaves, Transaction};
use crate::wire::{WireSize, FRAME_OVERHEAD, HASH_WIRE, SIG_WIRE, U32_WIRE, U64_WIRE};

/// The signed header of a bundle (the green part of the paper's Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BundleHeader {
    /// Which chain (= producing consensus node) this bundle extends.
    pub chain: ChainId,
    /// Position within the chain (first bundle is height 1).
    pub height: Height,
    /// Hash of the parent bundle's header ([`Hash::ZERO`] at height 1).
    pub parent: Hash,
    /// The producer's latest-received heights, per chain.
    pub tips: TipList,
    /// Merkle root over the bundle's transactions.
    pub tx_root: Hash,
    /// Merkle root over the bundle's erasure-coded stripes (Multi-Zone).
    pub stripe_root: Hash,
    /// Producer's signature over the header digest.
    pub signature: Signature,
}

impl BundleHeader {
    /// The digest the producer signs (everything except the signature).
    ///
    /// Streams the fields straight into the hasher — same digest as
    /// concatenating them, without building intermediate buffers (this runs
    /// once per append on every replica's hot path).
    pub fn digest(&self) -> Hash {
        let mut h = Sha256::new();
        h.update(b"bundle-header");
        h.update(&self.chain.0.to_be_bytes());
        h.update(&self.height.0.to_be_bytes());
        h.update(self.parent.as_bytes());
        h.update(self.tx_root.as_bytes());
        h.update(self.stripe_root.as_bytes());
        for height in self.tips.heights() {
            h.update(&height.0.to_be_bytes());
        }
        Hash(h.finalize())
    }

    /// The header's identity hash (same as [`BundleHeader::digest`]).
    pub fn hash(&self) -> Hash {
        self.digest()
    }

    /// Verifies that the producer (the node owning `self.chain`) signed
    /// this header.
    pub fn verify_signature(&self) -> bool {
        self.signature
            .verify_by(SignerId(self.chain.0), self.digest())
    }
}

impl WireSize for BundleHeader {
    fn wire_size(&self) -> usize {
        U32_WIRE + U64_WIRE + HASH_WIRE * 3 + self.tips.wire_size() + SIG_WIRE + FRAME_OVERHEAD
    }
}

/// A full bundle: signed header plus transaction body.
///
/// # Examples
///
/// ```
/// use predis_crypto::Keypair;
/// use predis_crypto::{Hash, SignerId};
/// use predis_types::{Bundle, ChainId, ClientId, Height, TipList, Transaction, TxId};
///
/// let key = Keypair::for_node(SignerId(0));
/// let txs: Vec<Transaction> =
///     (0..50).map(|i| Transaction::new(TxId(i), ClientId(0), 0)).collect();
/// let bundle = Bundle::build(
///     ChainId(0), Height(1), Hash::ZERO, TipList::new(4), txs, Hash::ZERO, &key,
/// );
/// assert!(bundle.verify());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bundle {
    /// The signed header.
    pub header: BundleHeader,
    /// The transactions (the gray body in the paper's Fig. 1).
    pub txs: Vec<Transaction>,
}

impl Bundle {
    /// Builds and signs a bundle. Computes the transaction root from `txs`;
    /// `stripe_root` is supplied by the caller (the dissemination layer
    /// computes it after erasure-encoding the body; pass [`Hash::ZERO`]
    /// when Multi-Zone is not in use).
    ///
    /// # Panics
    ///
    /// Panics if `key` does not belong to the node owning `chain` (a bundle
    /// must be signed by its producer).
    pub fn build(
        chain: ChainId,
        height: Height,
        parent: Hash,
        tips: TipList,
        txs: Vec<Transaction>,
        stripe_root: Hash,
        key: &Keypair,
    ) -> Bundle {
        assert_eq!(
            key.id(),
            SignerId(chain.0),
            "bundle must be signed by its producing chain's key"
        );
        let tx_root = MerkleTree::from_leaves(tx_leaves(&txs)).root();
        let mut header = BundleHeader {
            chain,
            height,
            parent,
            tips,
            tx_root,
            stripe_root,
            signature: Signature::default(),
        };
        header.signature = key.sign(header.digest());
        Bundle { header, txs }
    }

    /// Checks the producer signature and that the body matches the header's
    /// transaction root (§III-A validity checks 2 and signature).
    pub fn verify(&self) -> bool {
        self.header.verify_signature()
            && MerkleTree::from_leaves(tx_leaves(&self.txs)).root() == self.header.tx_root
    }

    /// Total bytes of transaction payloads.
    pub fn body_size(&self) -> usize {
        self.txs.iter().map(WireSize::wire_size).sum()
    }

    /// The header hash, i.e. this bundle's identity.
    pub fn hash(&self) -> Hash {
        self.header.hash()
    }
}

impl WireSize for Bundle {
    fn wire_size(&self) -> usize {
        self.header.wire_size() + self.body_size()
    }
}

/// Evidence that a producer equivocated: two validly signed headers for the
/// same chain and parent with different content (a "conflict bundle",
/// §III-A). Honest nodes multicast this proof and ban the producer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictProof {
    /// One of the conflicting headers.
    pub a: BundleHeader,
    /// The other conflicting header.
    pub b: BundleHeader,
}

impl ConflictProof {
    /// Checks the proof: both headers validly signed by the same producer,
    /// same height and parent, but different content.
    pub fn verify(&self) -> bool {
        self.a.chain == self.b.chain
            && self.a.height == self.b.height
            && self.a.parent == self.b.parent
            && self.a.hash() != self.b.hash()
            && self.a.verify_signature()
            && self.b.verify_signature()
    }

    /// The equivocating producer.
    pub fn offender(&self) -> ChainId {
        self.a.chain
    }
}

impl WireSize for ConflictProof {
    fn wire_size(&self) -> usize {
        self.a.wire_size() + self.b.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, TxId};

    fn key(chain: u32) -> Keypair {
        Keypair::for_node(SignerId(chain))
    }

    fn txs(n: u64, start: u64) -> Vec<Transaction> {
        (start..start + n)
            .map(|i| Transaction::new(TxId(i), ClientId(0), 0))
            .collect()
    }

    fn bundle(chain: u32, height: u64, parent: Hash, start_tx: u64) -> Bundle {
        Bundle::build(
            ChainId(chain),
            Height(height),
            parent,
            TipList::new(4),
            txs(10, start_tx),
            Hash::ZERO,
            &key(chain),
        )
    }

    #[test]
    fn build_verify_roundtrip() {
        let b = bundle(0, 1, Hash::ZERO, 0);
        assert!(b.verify());
        assert!(b.header.verify_signature());
    }

    #[test]
    fn tampered_body_fails_verification() {
        let mut b = bundle(0, 1, Hash::ZERO, 0);
        b.txs[0] = Transaction::new(TxId(999), ClientId(9), 0);
        assert!(!b.verify());
    }

    #[test]
    fn corrupt_stripe_reconstructions_fail_verification() {
        // Erasure-decoding with a corrupted stripe yields a byte-level
        // different tx vector — reordered, truncated, or mutated — and any
        // such difference moves the Merkle root off `header.tx_root`.
        let good = bundle(0, 1, Hash::ZERO, 0);
        assert!(good.verify());
        let mut reordered = good.clone();
        reordered.txs.swap(0, 1);
        assert!(!reordered.verify());
        let mut truncated = good.clone();
        truncated.txs.pop();
        assert!(!truncated.verify());
    }

    #[test]
    fn tampered_header_fails_signature() {
        let mut b = bundle(0, 1, Hash::ZERO, 0);
        b.header.height = Height(2);
        assert!(!b.header.verify_signature());
    }

    #[test]
    #[should_panic(expected = "signed by its producing chain")]
    fn foreign_key_rejected() {
        let _ = Bundle::build(
            ChainId(0),
            Height(1),
            Hash::ZERO,
            TipList::new(4),
            txs(1, 0),
            Hash::ZERO,
            &key(1),
        );
    }

    #[test]
    fn header_hash_covers_every_field() {
        let base = bundle(0, 2, Hash::digest(b"p"), 0).header;
        let mut h1 = base.clone();
        h1.parent = Hash::digest(b"q");
        assert_ne!(base.hash(), h1.hash());
        let mut h2 = base.clone();
        h2.tx_root = Hash::digest(b"r");
        assert_ne!(base.hash(), h2.hash());
        let mut h3 = base.clone();
        h3.tips = TipList::from(vec![Height(1), Height(0), Height(0), Height(0)]);
        assert_ne!(base.hash(), h3.hash());
        let mut h4 = base.clone();
        h4.stripe_root = Hash::digest(b"s");
        assert_ne!(base.hash(), h4.hash());
    }

    #[test]
    fn conflict_proof_detects_equivocation() {
        let parent = Hash::digest(b"parent");
        let a = bundle(2, 5, parent, 0);
        let b = bundle(2, 5, parent, 100); // same slot, different txs
        let proof = ConflictProof {
            a: a.header.clone(),
            b: b.header.clone(),
        };
        assert!(proof.verify());
        assert_eq!(proof.offender(), ChainId(2));
    }

    #[test]
    fn conflict_proof_rejects_non_conflicts() {
        let parent = Hash::digest(b"parent");
        let a = bundle(2, 5, parent, 0);
        // Same header twice: not a conflict.
        let same = ConflictProof {
            a: a.header.clone(),
            b: a.header.clone(),
        };
        assert!(!same.verify());
        // Different parents: legitimate siblings on different forks are
        // impossible by construction, but the proof must still reject.
        let b = bundle(2, 5, Hash::digest(b"other"), 100);
        let diff_parent = ConflictProof {
            a: a.header.clone(),
            b: b.header.clone(),
        };
        assert!(!diff_parent.verify());
        // Different chains.
        let c = bundle(3, 5, parent, 100);
        let diff_chain = ConflictProof {
            a: a.header.clone(),
            b: c.header.clone(),
        };
        assert!(!diff_chain.verify());
        // Unsigned/tampered header.
        let mut tampered = bundle(2, 5, parent, 100).header;
        tampered.tx_root = Hash::digest(b"evil");
        let bad_sig = ConflictProof {
            a: a.header.clone(),
            b: tampered,
        };
        assert!(!bad_sig.verify());
    }

    #[test]
    fn wire_sizes_add_up() {
        let b = bundle(0, 1, Hash::ZERO, 0);
        // 10 txs x 512 B body.
        assert_eq!(b.body_size(), 5120);
        assert_eq!(b.wire_size(), b.header.wire_size() + 5120);
        // Header: 4 + 8 + 96 + 32 + 64 + 16 = 220 for a 4-chain tip list.
        assert_eq!(b.header.wire_size(), 220);
    }
}
