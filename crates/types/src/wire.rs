//! Wire-size model.
//!
//! The simulator charges bandwidth by message size, so every type that
//! crosses the network reports the size it would have in a compact binary
//! encoding. Constants here keep that model in one place.

/// Bytes of a SHA-256 digest on the wire.
pub const HASH_WIRE: usize = 32;

/// Bytes of a signature on the wire (Ed25519-sized).
pub const SIG_WIRE: usize = 64;

/// Bytes of a height / sequence number.
pub const U64_WIRE: usize = 8;

/// Bytes of a chain / node / client id.
pub const U32_WIRE: usize = 4;

/// Default transaction size used by the paper's evaluation (512 bytes).
pub const DEFAULT_TX_SIZE: usize = 512;

/// Default transactions per bundle in the paper's evaluation (50).
pub const DEFAULT_BUNDLE_SIZE: usize = 50;

/// Default transactions per batch/block for vanilla PBFT/HotStuff in the
/// paper's evaluation (800).
pub const DEFAULT_BATCH_SIZE: usize = 800;

/// Small fixed framing overhead charged per message (type tag, lengths).
pub const FRAME_OVERHEAD: usize = 16;

/// Types that occupy bandwidth on the simulated wire.
pub trait WireSize {
    /// Encoded size in bytes.
    fn wire_size(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        assert_eq!(DEFAULT_TX_SIZE, 512);
        assert_eq!(DEFAULT_BUNDLE_SIZE, 50);
        assert_eq!(DEFAULT_BATCH_SIZE, 800);
    }
}
