//! Arc-shared payloads with memoized wire sizes.
//!
//! The simulator models a bandwidth-honest multicast as sequential unicasts,
//! which means every recipient receives "its own copy" of the message. Real
//! implementations (and the simulator, after this module) do not deep-copy
//! the payload per recipient: the bulk content — bundles, microblocks,
//! proposal payloads — is built once, shared by reference, and its wire size
//! is computed once at construction. [`Shared`] is the reference-counted
//! immutable handle; [`SizedPayload`] additionally memoizes the wire size so
//! the engine can charge bandwidth without re-walking the payload on every
//! send, delivery, and trace event.
//!
//! Sharing is a *simulator* optimization: the charged bandwidth is unchanged
//! because the cached size equals the recomputed size (enforced by a debug
//! assertion on every [`SizedPayload::wire_size`] call). Logically distinct
//! payloads — e.g. the two halves of a Byzantine equivocation — are distinct
//! allocations; nothing ever aliases two different values.
//!
//! [`payload_stats`] counts materializations so benchmark artifacts can prove
//! the clone count per produced bundle is O(1), independent of fan-out.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

use predis_crypto::Hash;

use crate::block::ProposalPayload;
use crate::bundle::Bundle;
use crate::wire::WireSize;

/// An immutable, cheaply clonable, reference-counted value.
///
/// `Clone` bumps a reference count instead of deep-copying; equality is by
/// value (two independently built equal payloads compare equal).
pub struct Shared<T: ?Sized>(Arc<T>);

impl<T> Shared<T> {
    /// Wraps a value; this is the only point that allocates.
    pub fn new(value: T) -> Shared<T> {
        Shared(Arc::new(value))
    }

    /// True if both handles point at the same allocation (not just equal
    /// values) — the zero-copy property tests assert with this.
    pub fn ptr_eq(a: &Shared<T>, b: &Shared<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

impl<T: ?Sized> Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: PartialEq + ?Sized> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq + ?Sized> Eq for Shared<T> {}

impl<T> From<T> for Shared<T> {
    fn from(value: T) -> Shared<T> {
        Shared::new(value)
    }
}

impl<T: WireSize + ?Sized> WireSize for Shared<T> {
    fn wire_size(&self) -> usize {
        (**self).wire_size()
    }
}

/// Lazily computed facts about a shared payload, stored next to (and with
/// the same lifetime as) the allocation they describe.
///
/// The cell is reference-counted separately from the value so that every
/// `Clone` of the owning [`SizedPayload`] — i.e. every simulated recipient
/// of a multicast — reads and writes the *same* memo. The payload behind a
/// [`SizedPayload`] is immutable (there is no mutable access), so a
/// memoized digest or verification verdict can never go stale.
#[derive(Default)]
struct PayloadMemo {
    digest: OnceLock<Hash>,
    verified: OnceLock<bool>,
}

/// A [`Shared`] payload whose wire size was computed once at construction.
///
/// Cloning bumps a reference count; [`WireSize::wire_size`] returns the
/// memoized size (with a debug assertion that it still matches the
/// recomputed one, so the cache can never silently drift).
///
/// Beyond the wire size, the payload carries a memo cell shared by
/// all clones: identity digests and verification verdicts are computed on
/// first use and then served from the allocation. Like payload sharing
/// itself this is a *simulator* optimization — digesting or verifying a
/// payload costs no simulated time, so memoizing it changes no simulated
/// observable; it only removes redundant host CPU work when fifteen
/// replicas each "independently" hash the same bytes.
pub struct SizedPayload<T: WireSize> {
    value: Shared<T>,
    wire: usize,
    memo: Shared<PayloadMemo>,
}

impl<T: WireSize> SizedPayload<T> {
    /// Materializes a payload: wraps it in an `Arc`, walks its wire size
    /// once, and records the materialization in [`payload_stats`].
    pub fn new(value: T) -> SizedPayload<T> {
        let wire = value.wire_size();
        payload_stats::record_materialize(wire);
        SizedPayload {
            value: Shared::new(value),
            wire,
            memo: Shared::new(PayloadMemo::default()),
        }
    }

    /// The payload's identity digest, computed by `compute` on first call
    /// and memoized in the shared allocation afterwards.
    pub fn memo_digest(&self, compute: impl FnOnce(&T) -> Hash) -> Hash {
        *self.memo.digest.get_or_init(|| compute(&self.value))
    }

    /// The payload's verification verdict, computed by `compute` on the
    /// first call and memoized in the shared allocation afterwards.
    pub fn memo_verify(&self, compute: impl FnOnce(&T) -> bool) -> bool {
        *self.memo.verified.get_or_init(|| compute(&self.value))
    }

    /// The shared handle (for stores that keep the same allocation the
    /// network delivered).
    pub fn shared(&self) -> &Shared<T> {
        &self.value
    }

    /// True if both handles share one allocation.
    pub fn ptr_eq(a: &SizedPayload<T>, b: &SizedPayload<T>) -> bool {
        Shared::ptr_eq(&a.value, &b.value)
    }
}

impl<T: WireSize> Clone for SizedPayload<T> {
    fn clone(&self) -> Self {
        SizedPayload {
            value: self.value.clone(),
            wire: self.wire,
            memo: self.memo.clone(),
        }
    }
}

impl<T: WireSize> Deref for SizedPayload<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: WireSize + fmt::Debug> fmt::Debug for SizedPayload<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: WireSize + PartialEq> PartialEq for SizedPayload<T> {
    fn eq(&self, other: &Self) -> bool {
        self.wire == other.wire && *self.value == *other.value
    }
}

impl<T: WireSize + Eq> Eq for SizedPayload<T> {}

impl<T: WireSize> WireSize for SizedPayload<T> {
    fn wire_size(&self) -> usize {
        debug_assert_eq!(
            self.wire,
            self.value.wire_size(),
            "memoized wire size drifted from the recomputed one"
        );
        self.wire
    }
}

impl<T: WireSize> From<T> for SizedPayload<T> {
    fn from(value: T) -> SizedPayload<T> {
        SizedPayload::new(value)
    }
}

/// The workhorse alias: a bundle shared between the network, the mempool,
/// and the dissemination layer without copies.
pub type SizedBundle = SizedPayload<Bundle>;

// Inherent methods take precedence over `Deref`, so existing call sites on
// the shared wrappers pick up the memoized forms without being touched.
// Calls on a bare `Bundle`/`ProposalPayload` still recompute — hand-built
// (possibly tampered) values in tests keep their semantics.
impl SizedPayload<Bundle> {
    /// [`Bundle::hash`], computed once per allocation.
    pub fn hash(&self) -> Hash {
        self.memo_digest(Bundle::hash)
    }

    /// [`Bundle::verify`], computed once per allocation: of the `n - 1`
    /// simulated recipients of a producer's multicast, the first to insert
    /// the bundle runs the signature + Merkle check and the rest reuse the
    /// verdict.
    pub fn verify(&self) -> bool {
        self.memo_verify(Bundle::verify)
    }
}

impl SizedPayload<ProposalPayload> {
    /// [`ProposalPayload::digest`], computed once per allocation instead of
    /// once per replica receiving the proposal.
    pub fn digest(&self) -> Hash {
        self.memo_digest(ProposalPayload::digest)
    }
}

/// Thread-local materialization counters.
///
/// Each simulation run executes on one thread (grid points fan out across a
/// pool, but a single run never migrates), so thread-local cells give exact,
/// deterministic per-run counts with zero synchronization. Harnesses call
/// [`payload_stats::reset`] at run start and [`payload_stats::snapshot`] at
/// report time; worker threads are reused between runs, so skipping the
/// reset would bleed one run's counts into the next.
pub mod payload_stats {
    use std::cell::Cell;

    thread_local! {
        static CLONES: Cell<u64> = const { Cell::new(0) };
        static BYTES: Cell<u64> = const { Cell::new(0) };
        static COMPUTED: Cell<u64> = const { Cell::new(0) };
    }

    /// A snapshot of the counters since the last [`reset`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct PayloadStats {
        /// Payload materializations (`msg.payload_clones`): each is one
        /// deep construction of a shared payload. Fan-out adds zero.
        pub payload_clones: u64,
        /// Wire bytes materialized (`msg.bytes_cloned`): the bytes that
        /// would have been deep-copied per recipient without sharing.
        pub bytes_cloned: u64,
        /// Full O(payload) wire-size walks (`wire_size.computed`); cached
        /// reads do not count.
        pub wire_size_computed: u64,
    }

    /// Records one payload materialization of `bytes` wire bytes.
    pub fn record_materialize(bytes: usize) {
        CLONES.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + bytes as u64));
        COMPUTED.with(|c| c.set(c.get() + 1));
    }

    /// Reads the counters accumulated on this thread since the last reset.
    pub fn snapshot() -> PayloadStats {
        PayloadStats {
            payload_clones: CLONES.with(Cell::get),
            bytes_cloned: BYTES.with(Cell::get),
            wire_size_computed: COMPUTED.with(Cell::get),
        }
    }

    /// Zeroes the counters (call at the start of every run).
    pub fn reset() {
        CLONES.with(|c| c.set(0));
        BYTES.with(|c| c.set(0));
        COMPUTED.with(|c| c.set(0));
    }

    /// Adds a snapshot taken on another thread into this thread's counters.
    /// The parallel simulation engine harvests each partition worker's
    /// counts at session teardown and folds them into the driving thread,
    /// so per-run totals stay exact regardless of thread count.
    pub fn add(stats: PayloadStats) {
        CLONES.with(|c| c.set(c.get() + stats.payload_clones));
        BYTES.with(|c| c.set(c.get() + stats.bytes_cloned));
        COMPUTED.with(|c| c.set(c.get() + stats.wire_size_computed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChainId, ClientId, Height, TxId};
    use crate::tip_list::TipList;
    use crate::tx::Transaction;
    use predis_crypto::{Hash, Keypair, SignerId};

    fn bundle(height: u64) -> Bundle {
        let key = Keypair::for_node(SignerId(0));
        let txs: Vec<Transaction> = (0..5)
            .map(|i| Transaction::new(TxId(i), ClientId(0), 0))
            .collect();
        Bundle::build(
            ChainId(0),
            Height(height),
            Hash::ZERO,
            TipList::new(4),
            txs,
            Hash::ZERO,
            &key,
        )
    }

    #[test]
    fn clone_shares_the_allocation() {
        let a = SizedBundle::new(bundle(1));
        let b = a.clone();
        assert!(SizedBundle::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.wire_size(), b.wire_size());
    }

    #[test]
    fn cached_size_matches_recomputed() {
        let b = bundle(2);
        let expect = b.wire_size();
        let shared = SizedBundle::new(b);
        assert_eq!(shared.wire_size(), expect);
        assert_eq!(shared.shared().wire_size(), expect);
    }

    #[test]
    fn equal_values_in_distinct_allocations_compare_equal_not_aliased() {
        let a = SizedBundle::new(bundle(3));
        let b = SizedBundle::new(bundle(3));
        assert_eq!(a, b);
        assert!(!SizedBundle::ptr_eq(&a, &b));
    }

    #[test]
    fn stats_count_materializations_not_clones() {
        payload_stats::reset();
        let a = SizedBundle::new(bundle(4));
        let wire = a.wire_size();
        // A thousand recipients: still one materialization.
        let fanout: Vec<SizedBundle> = (0..1000).map(|_| a.clone()).collect();
        assert!(fanout.iter().all(|c| SizedBundle::ptr_eq(&a, c)));
        let s = payload_stats::snapshot();
        assert_eq!(s.payload_clones, 1);
        assert_eq!(s.bytes_cloned, wire as u64);
        assert_eq!(s.wire_size_computed, 1);
        payload_stats::reset();
        assert_eq!(payload_stats::snapshot(), Default::default());
    }
}
