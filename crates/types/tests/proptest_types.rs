//! Property tests for tip lists, the cut rule, and bundle integrity.

use predis_crypto::{Hash, Keypair, SignerId};
use predis_types::{
    quorum_cut_height, Bundle, ChainId, ClientId, Height, TipList, Transaction, TxId,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge is the lattice join: the result dominates both inputs and is
    /// the least such list.
    #[test]
    fn merge_is_join(
        a in proptest::collection::vec(0u64..100, 4),
        b in proptest::collection::vec(0u64..100, 4),
    ) {
        let ta = TipList::from(a.iter().map(|&h| Height(h)).collect::<Vec<_>>());
        let tb = TipList::from(b.iter().map(|&h| Height(h)).collect::<Vec<_>>());
        let mut m = ta.clone();
        m.merge(&tb);
        prop_assert!(m.dominates(&ta));
        prop_assert!(m.dominates(&tb));
        // Least upper bound: every entry equals one of the inputs'.
        for (i, &h) in m.heights().iter().enumerate() {
            prop_assert!(h == ta.get(ChainId(i as u32)) || h == tb.get(ChainId(i as u32)));
        }
    }

    /// dominates is a partial order: reflexive and antisymmetric.
    #[test]
    fn dominates_partial_order(
        a in proptest::collection::vec(0u64..20, 4),
        b in proptest::collection::vec(0u64..20, 4),
    ) {
        let ta = TipList::from(a.iter().map(|&h| Height(h)).collect::<Vec<_>>());
        let tb = TipList::from(b.iter().map(|&h| Height(h)).collect::<Vec<_>>());
        prop_assert!(ta.dominates(&ta));
        if ta.dominates(&tb) && tb.dominates(&ta) {
            prop_assert_eq!(ta.heights(), tb.heights());
        }
    }

    /// The cut is monotone: improving any acknowledgement never lowers it.
    #[test]
    fn cut_is_monotone(
        acks in proptest::collection::vec(0u64..50, 4..16),
        bump_idx in any::<u16>(),
        bump in 1u64..10,
    ) {
        let f = (acks.len() - 1) / 3;
        let hs: Vec<Height> = acks.iter().map(|&h| Height(h)).collect();
        let before = quorum_cut_height(&hs, f);
        let mut bumped = hs.clone();
        let i = bump_idx as usize % bumped.len();
        bumped[i] = Height(bumped[i].0 + bump);
        let after = quorum_cut_height(&bumped, f);
        prop_assert!(after >= before);
    }

    /// Bundle build/verify roundtrips and any body tampering is caught.
    #[test]
    fn bundle_integrity(n_txs in 0usize..20, tamper in any::<u16>()) {
        let key = Keypair::for_node(SignerId(2));
        let txs: Vec<Transaction> = (0..n_txs as u64)
            .map(|i| Transaction::new(TxId(i), ClientId(0), 0))
            .collect();
        let bundle = Bundle::build(
            ChainId(2), Height(1), Hash::ZERO, TipList::new(4), txs, Hash::ZERO, &key,
        );
        prop_assert!(bundle.verify());
        if n_txs > 0 {
            let mut bad = bundle.clone();
            let i = tamper as usize % n_txs;
            bad.txs[i] = Transaction::new(TxId(7777), ClientId(9), 0);
            prop_assert!(!bad.verify());
        }
    }
}
