//! A single bundle chain: one producer's totally ordered bundle sequence.

use std::collections::BTreeMap;

use predis_crypto::Hash;
use predis_types::{Bundle, BundleHeader, ChainId, Height, SizedBundle};

/// The validated state of one bundle chain inside a node's mempool.
///
/// Heights start at 1; the chain is always contiguous: every height in
/// `1..=tip` has a validated bundle (or had one before pruning). Bundles
/// that arrive before their parent wait in `pending`.
///
/// Bundles are stored as [`SizedBundle`]s: the mempool keeps the very
/// allocation the network delivered (or the producer built), so accepting,
/// parking, and re-serving a bundle never copies its transaction body.
#[derive(Debug, Clone)]
pub struct BundleChain {
    chain: ChainId,
    /// Validated bundles, contiguous up to `tip` (older ones may be pruned).
    bundles: BTreeMap<Height, SizedBundle>,
    /// Highest validated (contiguous) height.
    tip: Height,
    /// Highest committed height (all slices at or below are in blocks).
    committed: Height,
    /// Out-of-order arrivals waiting for their parents.
    pending: BTreeMap<Height, SizedBundle>,
    /// Header hash at each validated height (kept even after pruning the
    /// body, so parent links can always be checked).
    hashes: BTreeMap<Height, Hash>,
}

impl BundleChain {
    /// An empty chain for `chain`.
    pub fn new(chain: ChainId) -> BundleChain {
        BundleChain {
            chain,
            bundles: BTreeMap::new(),
            tip: Height(0),
            committed: Height(0),
            pending: BTreeMap::new(),
            hashes: BTreeMap::new(),
        }
    }

    /// Which chain this is.
    pub fn id(&self) -> ChainId {
        self.chain
    }

    /// Highest contiguous validated height.
    pub fn tip(&self) -> Height {
        self.tip
    }

    /// Highest committed height.
    pub fn committed(&self) -> Height {
        self.committed
    }

    /// The validated bundle at `h`, if present (and not pruned).
    pub fn bundle(&self, h: Height) -> Option<&Bundle> {
        self.bundles.get(&h).map(|b| &**b)
    }

    /// The validated bundle at `h` as a shared handle, for re-serving to
    /// peers without copying the body.
    pub fn bundle_shared(&self, h: Height) -> Option<&SizedBundle> {
        self.bundles.get(&h)
    }

    /// The header of the validated bundle at `h`, if present.
    pub fn header(&self, h: Height) -> Option<&BundleHeader> {
        self.bundles.get(&h).map(|b| &b.header)
    }

    /// The header hash at `h` (survives pruning), if ever validated.
    pub fn hash_at(&self, h: Height) -> Option<Hash> {
        if h == Height(0) {
            return Some(Hash::ZERO);
        }
        self.hashes.get(&h).copied()
    }

    /// Whether all bundles in `(from, to]` are held (bodies present).
    pub fn holds_range(&self, from: Height, to: Height) -> bool {
        (from.0 + 1..=to.0).all(|h| self.bundles.contains_key(&Height(h)))
    }

    /// Heights in `(from, to]` whose bodies are missing.
    pub fn missing_in(&self, from: Height, to: Height) -> Vec<Height> {
        (from.0 + 1..=to.0)
            .map(Height)
            .filter(|h| !self.bundles.contains_key(h))
            .collect()
    }

    /// Stores a validated bundle at the tip (caller has checked parent
    /// linkage, signature and body), advancing the tip.
    ///
    /// # Panics
    ///
    /// Panics if the bundle is not exactly at `tip + 1`.
    pub(crate) fn append(&mut self, bundle: impl Into<SizedBundle>) {
        let bundle = bundle.into();
        assert_eq!(
            bundle.header.height,
            self.tip.next(),
            "append must extend the tip"
        );
        let h = bundle.header.height;
        self.hashes.insert(h, bundle.hash());
        self.bundles.insert(h, bundle);
        self.tip = h;
    }

    /// Parks an out-of-order bundle; returns `false` if a different bundle
    /// already waits at that height (kept — first writer wins; a conflict,
    /// if real, is detected when the height becomes the tip).
    pub(crate) fn park(&mut self, bundle: impl Into<SizedBundle>) -> bool {
        let bundle = bundle.into();
        let h = bundle.header.height;
        if self.pending.contains_key(&h) {
            return false;
        }
        self.pending.insert(h, bundle);
        true
    }

    /// Takes the parked bundle at `h`, if any.
    pub(crate) fn take_parked(&mut self, h: Height) -> Option<SizedBundle> {
        self.pending.remove(&h)
    }

    /// Number of parked (out-of-order) bundles.
    pub fn parked_count(&self) -> usize {
        self.pending.len()
    }

    /// Marks everything up to `h` as committed.
    pub(crate) fn commit_to(&mut self, h: Height) {
        if h > self.committed {
            self.committed = h.min(self.tip);
        }
    }

    /// Drops bundle bodies at or below the committed height (header hashes
    /// are retained for parent-link checks). Returns the number of bundles
    /// pruned.
    pub fn prune_committed(&mut self) -> usize {
        let keep = self.committed.next();
        let before = self.bundles.len();
        self.bundles = self.bundles.split_off(&keep);
        before - self.bundles.len()
    }

    /// Fast-forwards the chain to a committed anchor learned via state
    /// transfer: everything at or below `height` is discarded (those
    /// bundles were pruned network-wide once committed) and the chain is
    /// re-anchored so that live bundles at `height + 1` — whose parent is
    /// `hash` — validate and append. Parked future bundles survive and
    /// cascade after re-anchoring. No-op if the chain is already past
    /// `height`.
    pub fn fast_forward(&mut self, height: Height, hash: Hash) {
        if height <= self.tip {
            return;
        }
        self.bundles.clear();
        self.hashes.clear();
        self.hashes.insert(height, hash);
        self.tip = height;
        self.committed = height;
        // Parked bundles at or below the anchor are stale now.
        self.pending = self.pending.split_off(&height.next());
    }

    /// Rolls the chain back to the committed prefix: everything above the
    /// committed height (validated or parked) is dropped, and the tip
    /// returns to the committed height. Used when pardoning a banned
    /// producer (§III-E rejoin): the committed prefix is consistent across
    /// honest nodes (Theorem 3.3), so all of them restart the chain from
    /// the same state.
    pub fn rollback_to_committed(&mut self) {
        let keep = self.committed.next();
        self.bundles.split_off(&keep);
        self.hashes.split_off(&keep);
        self.pending.clear();
        self.tip = self.committed;
    }

    /// Iterates validated bundles in `(from, to]`, in height order.
    /// Empty when `from >= to`.
    pub fn range(&self, from: Height, to: Height) -> impl Iterator<Item = &Bundle> {
        let iter = if from < to {
            Some(self.bundles.range(from.next()..=to))
        } else {
            None
        };
        iter.into_iter().flatten().map(|(_, b)| &**b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predis_crypto::{Keypair, SignerId};
    use predis_types::{ClientId, TipList, Transaction, TxId};

    fn mk(height: u64, parent: Hash) -> Bundle {
        Bundle::build(
            ChainId(0),
            Height(height),
            parent,
            TipList::new(2),
            vec![Transaction::new(TxId(height), ClientId(0), 0)],
            Hash::ZERO,
            &Keypair::for_node(SignerId(0)),
        )
    }

    #[test]
    fn append_advances_tip_and_keeps_hashes() {
        let mut c = BundleChain::new(ChainId(0));
        let b1 = mk(1, Hash::ZERO);
        let h1 = b1.hash();
        c.append(b1);
        let b2 = mk(2, h1);
        c.append(b2);
        assert_eq!(c.tip(), Height(2));
        assert_eq!(c.hash_at(Height(1)), Some(h1));
        assert_eq!(c.hash_at(Height(0)), Some(Hash::ZERO));
        assert_eq!(c.hash_at(Height(9)), None);
        assert!(c.holds_range(Height(0), Height(2)));
        assert_eq!(c.missing_in(Height(0), Height(3)), vec![Height(3)]);
    }

    #[test]
    #[should_panic(expected = "extend the tip")]
    fn append_rejects_gaps() {
        let mut c = BundleChain::new(ChainId(0));
        c.append(mk(2, Hash::ZERO));
    }

    #[test]
    fn park_and_take() {
        let mut c = BundleChain::new(ChainId(0));
        let b3 = mk(3, Hash::digest(b"x"));
        assert!(c.park(b3.clone()));
        assert!(!c.park(b3.clone()));
        assert_eq!(c.parked_count(), 1);
        assert_eq!(c.take_parked(Height(3)).unwrap().header.height, Height(3));
        assert_eq!(c.parked_count(), 0);
    }

    #[test]
    fn commit_and_prune() {
        let mut c = BundleChain::new(ChainId(0));
        let b1 = mk(1, Hash::ZERO);
        let h1 = b1.hash();
        c.append(b1);
        c.append(mk(2, h1));
        c.commit_to(Height(1));
        assert_eq!(c.committed(), Height(1));
        assert_eq!(c.prune_committed(), 1);
        assert!(c.bundle(Height(1)).is_none());
        assert!(c.bundle(Height(2)).is_some());
        // Hash survives pruning.
        assert_eq!(c.hash_at(Height(1)), Some(h1));
        // Commit cannot exceed the tip.
        c.commit_to(Height(99));
        assert_eq!(c.committed(), Height(2));
    }

    #[test]
    fn range_iterates_slice() {
        let mut c = BundleChain::new(ChainId(0));
        let b1 = mk(1, Hash::ZERO);
        let h1 = b1.hash();
        c.append(b1);
        let b2 = mk(2, h1);
        let h2 = b2.hash();
        c.append(b2);
        c.append(mk(3, h2));
        let heights: Vec<u64> = c
            .range(Height(1), Height(3))
            .map(|b| b.header.height.0)
            .collect();
        assert_eq!(heights, vec![2, 3]);
    }
}
