//! The ban list: Predis's defence against forking attacks (§III-E).
//!
//! When an honest node detects two conflict bundles (same producer, same
//! parent, different headers) it multicasts the [`ConflictProof`] and
//! registers the producer. Honest leaders never cut banned chains and honest
//! voters reject Predis blocks referencing them, so an equivocator's
//! bundles stop entering blocks network-wide.

use std::collections::BTreeMap;

use predis_types::{ChainId, ConflictProof};

/// Tracks banned bundle producers together with the evidence.
///
/// Ordered storage on purpose: anything that iterates the ban list (gossip
/// re-broadcast, report dumps) must see a deterministic order, or run
/// fingerprints would depend on hash-map layout.
#[derive(Debug, Clone, Default)]
pub struct BanList {
    banned: BTreeMap<ChainId, ConflictProof>,
}

impl BanList {
    /// An empty ban list.
    pub fn new() -> BanList {
        BanList::default()
    }

    /// Registers a producer if the proof verifies. Returns `true` if the
    /// producer is newly banned (i.e. the proof should be gossiped on).
    pub fn register(&mut self, proof: ConflictProof) -> bool {
        if !proof.verify() {
            return false;
        }
        let offender = proof.offender();
        if self.banned.contains_key(&offender) {
            return false;
        }
        self.banned.insert(offender, proof);
        true
    }

    /// True if `chain` is banned.
    pub fn is_banned(&self, chain: ChainId) -> bool {
        self.banned.contains_key(&chain)
    }

    /// The stored evidence against `chain`, if banned.
    pub fn evidence(&self, chain: ChainId) -> Option<&ConflictProof> {
        self.banned.get(&chain)
    }

    /// Number of banned producers.
    pub fn len(&self) -> usize {
        self.banned.len()
    }

    /// True if nobody is banned.
    pub fn is_empty(&self) -> bool {
        self.banned.is_empty()
    }

    /// Lifts a ban (the paper lets a banned node rejoin with a fresh genesis
    /// bundle after a cooling-off period).
    pub fn unban(&mut self, chain: ChainId) -> bool {
        self.banned.remove(&chain).is_some()
    }

    /// Iterates the banned producers.
    pub fn iter(&self) -> impl Iterator<Item = ChainId> + '_ {
        self.banned.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predis_crypto::{Hash, Keypair, SignerId};
    use predis_types::{Bundle, ClientId, Height, TipList, Transaction, TxId};

    fn conflicting_pair(chain: u32) -> ConflictProof {
        let key = Keypair::for_node(SignerId(chain));
        let parent = Hash::digest(b"p");
        let mk = |start: u64| {
            Bundle::build(
                ChainId(chain),
                Height(3),
                parent,
                TipList::new(4),
                vec![Transaction::new(TxId(start), ClientId(0), 0)],
                Hash::ZERO,
                &key,
            )
            .header
        };
        ConflictProof { a: mk(1), b: mk(2) }
    }

    #[test]
    fn valid_proof_bans_once() {
        let mut ban = BanList::new();
        let proof = conflicting_pair(2);
        assert!(ban.register(proof.clone()));
        assert!(ban.is_banned(ChainId(2)));
        assert!(!ban.is_banned(ChainId(1)));
        // Re-registering is not "new".
        assert!(!ban.register(proof));
        assert_eq!(ban.len(), 1);
        assert_eq!(ban.iter().collect::<Vec<_>>(), vec![ChainId(2)]);
        assert!(ban.evidence(ChainId(2)).is_some());
    }

    #[test]
    fn invalid_proof_rejected() {
        let mut ban = BanList::new();
        let mut proof = conflicting_pair(2);
        proof.b = proof.a.clone(); // identical headers: no conflict
        assert!(!ban.register(proof));
        assert!(ban.is_empty());
    }

    #[test]
    fn unban_allows_rejoin() {
        let mut ban = BanList::new();
        ban.register(conflicting_pair(0));
        assert!(ban.unban(ChainId(0)));
        assert!(!ban.is_banned(ChainId(0)));
        assert!(!ban.unban(ChainId(0)));
    }
}
