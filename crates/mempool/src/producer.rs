//! Bundle production: turning a node's pending client transactions into a
//! signed bundle chain.

use std::collections::VecDeque;

use predis_crypto::{Hash, Keypair};
use predis_types::{Bundle, ChainId, Height, TipList, Transaction};

/// A FIFO of client transactions awaiting packing.
#[derive(Debug, Default)]
pub struct TxPool {
    queue: VecDeque<Transaction>,
    total_enqueued: u64,
}

impl TxPool {
    /// An empty pool.
    pub fn new() -> TxPool {
        TxPool::default()
    }

    /// Enqueues one transaction.
    pub fn push(&mut self, tx: Transaction) {
        self.queue.push_back(tx);
        self.total_enqueued += 1;
    }

    /// Dequeues up to `max` transactions.
    pub fn take(&mut self, max: usize) -> Vec<Transaction> {
        let n = max.min(self.queue.len());
        self.queue.drain(..n).collect()
    }

    /// Number of transactions waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total transactions ever enqueued (for accounting).
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

/// Produces one consensus node's bundle chain (§III-A: transactions are
/// "unceasingly packed into bundles" and multicast).
#[derive(Debug)]
pub struct BundleProducer {
    chain: ChainId,
    key: Keypair,
    next_height: Height,
    parent: Hash,
    bundle_size: usize,
}

impl BundleProducer {
    /// Creates a producer for `chain` signing with `key`, packing at most
    /// `bundle_size` transactions per bundle (the paper's default is 50).
    ///
    /// # Panics
    ///
    /// Panics if `bundle_size` is zero.
    pub fn new(chain: ChainId, key: Keypair, bundle_size: usize) -> BundleProducer {
        assert!(bundle_size > 0, "bundle size must be positive");
        BundleProducer {
            chain,
            key,
            next_height: Height(1),
            parent: Hash::ZERO,
            bundle_size,
        }
    }

    /// The chain this producer extends.
    pub fn chain(&self) -> ChainId {
        self.chain
    }

    /// The height the next bundle will have.
    pub fn next_height(&self) -> Height {
        self.next_height
    }

    /// Maximum transactions per bundle.
    pub fn bundle_size(&self) -> usize {
        self.bundle_size
    }

    /// Restarts the chain from `height` with the given parent hash — the
    /// §III-E rejoin path after a pardon: the producer resumes at the
    /// committed prefix every honest node agrees on.
    pub fn restart_at(&mut self, height: Height, parent: Hash) {
        self.next_height = height;
        self.parent = parent;
    }

    /// Produces the next bundle from `txpool`, stamping it with `tips`
    /// (the producer's current acknowledgement vector — pass
    /// [`crate::Mempool::my_tips`]).
    ///
    /// When `allow_empty` is false and the pool is empty, returns `None`
    /// (nothing to pre-distribute); when true, an empty bundle is produced
    /// anyway so the tip list keeps flowing (heartbeat acknowledgements,
    /// needed for cut progress under light load).
    pub fn produce(
        &mut self,
        txpool: &mut TxPool,
        mut tips: TipList,
        stripe_root: Hash,
        allow_empty: bool,
    ) -> Option<Bundle> {
        let txs = txpool.take(self.bundle_size);
        if txs.is_empty() && !allow_empty {
            return None;
        }
        // A producer acknowledges its own chain up to the bundle it is
        // creating: tip lists must dominate the parent's, which includes
        // this chain's previous height.
        tips.observe(self.chain, self.next_height);
        let bundle = Bundle::build(
            self.chain,
            self.next_height,
            self.parent,
            tips,
            txs,
            stripe_root,
            &self.key,
        );
        self.parent = bundle.hash();
        self.next_height = self.next_height.next();
        Some(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mempool;
    use predis_crypto::SignerId;
    use predis_types::{ClientId, TxId};

    fn txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::new(TxId(i), ClientId(0), 0))
            .collect()
    }

    #[test]
    fn txpool_fifo() {
        let mut pool = TxPool::new();
        for tx in txs(5) {
            pool.push(tx);
        }
        assert_eq!(pool.len(), 5);
        let first = pool.take(2);
        assert_eq!(first[0].id, TxId(0));
        assert_eq!(first[1].id, TxId(1));
        assert_eq!(pool.take(10).len(), 3);
        assert!(pool.is_empty());
        assert_eq!(pool.total_enqueued(), 5);
    }

    #[test]
    fn produced_bundles_chain_and_validate() {
        let mut producer = BundleProducer::new(ChainId(0), Keypair::for_node(SignerId(0)), 3);
        let mut txpool = TxPool::new();
        for tx in txs(7) {
            txpool.push(tx);
        }
        let mut mempool = Mempool::new(4, 1, Some(ChainId(0)));
        for expected_len in [3usize, 3, 1] {
            let b = producer
                .produce(&mut txpool, mempool.my_tips(), Hash::ZERO, false)
                .unwrap();
            assert_eq!(b.txs.len(), expected_len);
            assert!(b.verify());
            mempool.insert_bundle(b).unwrap();
        }
        assert_eq!(mempool.chain(ChainId(0)).tip(), Height(3));
        // Pool drained: silent unless empty bundles are allowed.
        assert!(producer
            .produce(&mut txpool, mempool.my_tips(), Hash::ZERO, false)
            .is_none());
        let hb = producer
            .produce(&mut txpool, mempool.my_tips(), Hash::ZERO, true)
            .unwrap();
        assert!(hb.txs.is_empty());
        assert!(hb.verify());
        assert_eq!(hb.header.height, Height(4));
    }

    #[test]
    fn tip_list_acknowledges_own_chain() {
        let mut producer = BundleProducer::new(ChainId(2), Keypair::for_node(SignerId(2)), 10);
        let mut txpool = TxPool::new();
        txpool.push(Transaction::new(TxId(0), ClientId(0), 0));
        let b = producer
            .produce(&mut txpool, TipList::new(4), Hash::ZERO, false)
            .unwrap();
        assert_eq!(b.header.tips.get(ChainId(2)), Height(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bundle_size_rejected() {
        let _ = BundleProducer::new(ChainId(0), Keypair::for_node(SignerId(0)), 0);
    }
}
