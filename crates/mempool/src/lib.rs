//! # predis-mempool
//!
//! Predis's chained mempool (§III of the paper): every consensus node keeps
//! `n_c` **parallel bundle chains** — one per producer — and the leader
//! **cuts** them each round at the heights acknowledged by the fastest
//! `n_c − f` nodes (read straight off the tip lists carried in bundles),
//! yielding a constant-size Predis block instead of RBC/PAB certificate
//! machinery.
//!
//! # Examples
//!
//! ```
//! use predis_crypto::{Hash, Keypair, SignerId};
//! use predis_mempool::{BundleProducer, Mempool, TxPool};
//! use predis_types::{ChainId, ClientId, Transaction, TxId, View};
//!
//! // One producer feeds a 4-node mempool; the node then cuts and builds a
//! // Predis block.
//! let key = Keypair::for_node(SignerId(0));
//! let mut producer = BundleProducer::new(ChainId(0), key, 50);
//! let mut txpool = TxPool::new();
//! for i in 0..100 {
//!     txpool.push(Transaction::new(TxId(i), ClientId(0), 0));
//! }
//! let mut mempool = Mempool::new(4, 1, Some(ChainId(0)));
//! while let Some(bundle) =
//!     producer.produce(&mut txpool, mempool.my_tips(), Hash::ZERO, false)
//! {
//!     mempool.insert_bundle(bundle)?;
//! }
//! // With only the leader's own acks, nothing reaches the n_c - f quorum
//! // yet, so no block can be built.
//! let base = mempool.committed_base();
//! assert!(mempool.build_block(View(1), Hash::ZERO, &base, &key).is_none());
//! # Ok::<(), predis_mempool::BundleError>(())
//! ```

#![warn(missing_docs)]

pub mod ban;
pub mod chain;
pub mod mempool;
pub mod producer;

pub use ban::BanList;
pub use chain::BundleChain;
pub use mempool::{BlockValidationError, BundleError, InsertOutcome, Mempool};
pub use producer::{BundleProducer, TxPool};
