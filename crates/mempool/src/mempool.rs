//! The Predis mempool: `n_c` parallel bundle chains plus the cut rule.
//!
//! This module is the paper's core data structure (§III). Every node —
//! consensus or full — maintains one [`Mempool`]; consensus nodes
//! additionally use it to build and validate Predis blocks.

use predis_crypto::{Hash, Keypair, MerkleTree, Signature};
use predis_types::{
    quorum_cut_height, Bundle, ChainId, ConflictProof, Height, PredisBlock, SizedBundle, TipList,
    Transaction, View,
};

use crate::ban::BanList;
use crate::chain::BundleChain;

/// The outcome of inserting a received bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The bundle extended its chain; `absorbed` parked bundles followed it.
    Inserted {
        /// The chain that grew.
        chain: ChainId,
        /// The chain's new tip.
        new_tip: Height,
        /// How many previously parked bundles became valid in cascade.
        absorbed: u64,
    },
    /// A bundle with this exact header was already validated.
    AlreadyKnown,
    /// The bundle arrived before its parent and was parked; the node should
    /// request the height `waiting_for` from the producer (§III-A check 1).
    Parked {
        /// The next height the chain needs.
        waiting_for: Height,
    },
    /// The producer is banned; the bundle was discarded.
    IgnoredBanned,
    /// Equivocation detected: the proof should be multicast and the
    /// producer is now banned locally (§III-E forking attack).
    Conflict(Box<ConflictProof>),
}

/// Why a bundle was rejected outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// The chain id does not exist in this network.
    UnknownChain(ChainId),
    /// Bad signature or transaction-root mismatch.
    InvalidBundle,
    /// The parent hash does not match the validated chain.
    ParentMismatch {
        /// The offending chain.
        chain: ChainId,
        /// The offending height.
        height: Height,
    },
    /// The tip list is not `>=` the parent bundle's tip list (§III-A
    /// validity check 3).
    TipRegression {
        /// The offending chain.
        chain: ChainId,
        /// The offending height.
        height: Height,
    },
    /// The bundle is at or below a pruned, committed height.
    Stale {
        /// The offending chain.
        chain: ChainId,
        /// The offending height.
        height: Height,
    },
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BundleError::UnknownChain(c) => write!(f, "unknown chain {c}"),
            BundleError::InvalidBundle => write!(f, "invalid bundle signature or tx root"),
            BundleError::ParentMismatch { chain, height } => {
                write!(f, "parent mismatch on {chain} at {height}")
            }
            BundleError::TipRegression { chain, height } => {
                write!(f, "tip list regression on {chain} at {height}")
            }
            BundleError::Stale { chain, height } => {
                write!(f, "stale bundle on {chain} at {height}")
            }
        }
    }
}

impl std::error::Error for BundleError {}

/// Why a received Predis block failed validation (§III-B checks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockValidationError {
    /// Structurally broken (mismatched vectors, header slots wrong).
    Malformed,
    /// The block's base does not match the expected parent state.
    BaseMismatch,
    /// The block cuts a chain this node has banned (check 2).
    BannedProducer(ChainId),
    /// Bundles referenced by the block are missing locally; the node must
    /// fetch them before voting (check 3). Heights listed per chain.
    MissingBundles(Vec<(ChainId, Height)>),
    /// The header in the block disagrees with the locally validated bundle
    /// at the cut height — evidence of equivocation somewhere.
    HeaderMismatch(ChainId),
    /// The recomputed transaction Merkle root differs (check 4).
    TxRootMismatch,
}

impl std::fmt::Display for BlockValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockValidationError::Malformed => write!(f, "malformed predis block"),
            BlockValidationError::BaseMismatch => write!(f, "block base mismatches parent state"),
            BlockValidationError::BannedProducer(c) => {
                write!(f, "block references banned producer {c}")
            }
            BlockValidationError::MissingBundles(m) => {
                write!(f, "missing {} bundles referenced by block", m.len())
            }
            BlockValidationError::HeaderMismatch(c) => {
                write!(f, "header mismatch on {c} at cut height")
            }
            BlockValidationError::TxRootMismatch => write!(f, "transaction root mismatch"),
        }
    }
}

impl std::error::Error for BlockValidationError {}

/// A node's Predis mempool.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Mempool {
    f: usize,
    /// This node's own chain, if it is a consensus node.
    me: Option<ChainId>,
    chains: Vec<BundleChain>,
    /// Tip list of the bundle currently at each chain's tip (the producer's
    /// newest acknowledgement vector).
    producer_tips: Vec<TipList>,
    ban: BanList,
}

impl Mempool {
    /// Creates a mempool tracking `n_chains` producer chains with fault
    /// bound `f`. `me` is this node's own chain if it is a consensus node.
    ///
    /// # Panics
    ///
    /// Panics if `n_chains == 0` or `f >= n_chains`.
    pub fn new(n_chains: usize, f: usize, me: Option<ChainId>) -> Mempool {
        assert!(n_chains > 0, "need at least one chain");
        assert!(f < n_chains, "f must be smaller than the chain count");
        Mempool {
            f,
            me,
            chains: (0..n_chains)
                .map(|i| BundleChain::new(ChainId(i as u32)))
                .collect(),
            producer_tips: vec![TipList::new(n_chains); n_chains],
            ban: BanList::new(),
        }
    }

    /// Number of chains (= consensus nodes).
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// The fault bound `f`.
    pub fn fault_bound(&self) -> usize {
        self.f
    }

    /// Read access to a chain's state.
    ///
    /// # Panics
    ///
    /// Panics if `chain` is out of range.
    pub fn chain(&self, chain: ChainId) -> &BundleChain {
        &self.chains[chain.index()]
    }

    /// The ban list.
    pub fn ban_list(&self) -> &BanList {
        &self.ban
    }

    /// Registers externally received conflict evidence; returns `true` if
    /// the producer is newly banned (gossip it on).
    pub fn register_conflict(&mut self, proof: ConflictProof) -> bool {
        self.ban.register(proof)
    }

    /// This node's current acknowledgement vector: the tip of every chain.
    /// This is what the node writes into the bundles it produces.
    pub fn my_tips(&self) -> TipList {
        TipList::from(self.chains.iter().map(BundleChain::tip).collect::<Vec<_>>())
    }

    /// Validates and inserts a received bundle (§III-A checks 1-4).
    ///
    /// Accepts anything convertible into a [`SizedBundle`]; passing one
    /// directly (the form the network delivers) stores the very same
    /// allocation without copying the transaction body.
    ///
    /// # Errors
    ///
    /// Returns a [`BundleError`] when the bundle is rejected outright;
    /// recoverable situations (parked, duplicate, banned, conflict) are
    /// reported through [`InsertOutcome`].
    pub fn insert_bundle(
        &mut self,
        bundle: impl Into<SizedBundle>,
    ) -> Result<InsertOutcome, BundleError> {
        let bundle = bundle.into();
        let chain = bundle.header.chain;
        if chain.index() >= self.chains.len() {
            return Err(BundleError::UnknownChain(chain));
        }
        if self.ban.is_banned(chain) {
            return Ok(InsertOutcome::IgnoredBanned);
        }
        if !bundle.verify() {
            return Err(BundleError::InvalidBundle);
        }
        let h = bundle.header.height;
        let state = &self.chains[chain.index()];
        if h <= state.tip() {
            // Duplicate or equivocation at an already validated height.
            return match state.hash_at(h) {
                Some(known) if known == bundle.hash() => Ok(InsertOutcome::AlreadyKnown),
                Some(_) => {
                    let ours = match state.header(h) {
                        Some(hdr) => hdr.clone(),
                        // Body pruned: cannot build evidence; the height is
                        // committed anyway, nothing to do.
                        None => return Err(BundleError::Stale { chain, height: h }),
                    };
                    if ours.parent == bundle.header.parent {
                        let proof = ConflictProof {
                            a: ours,
                            b: bundle.header.clone(),
                        };
                        debug_assert!(proof.verify());
                        self.ban.register(proof.clone());
                        Ok(InsertOutcome::Conflict(Box::new(proof)))
                    } else {
                        Err(BundleError::ParentMismatch { chain, height: h })
                    }
                }
                None => Err(BundleError::Stale { chain, height: h }),
            };
        }
        if h > state.tip().next() {
            let waiting_for = state.tip().next();
            self.chains[chain.index()].park(bundle);
            return Ok(InsertOutcome::Parked { waiting_for });
        }
        // h == tip + 1: the appending case.
        self.try_append(bundle)?;
        let mut absorbed = 0;
        // Cascade parked successors.
        loop {
            let next = self.chains[chain.index()].tip().next();
            match self.chains[chain.index()].take_parked(next) {
                Some(parked) => match self.try_append(parked) {
                    Ok(()) => absorbed += 1,
                    Err(_) => break, // broken successor: drop it
                },
                None => break,
            }
        }
        Ok(InsertOutcome::Inserted {
            chain,
            new_tip: self.chains[chain.index()].tip(),
            absorbed,
        })
    }

    /// Appends a verified bundle at exactly `tip + 1` after parent/tip-list
    /// checks.
    fn try_append(&mut self, bundle: SizedBundle) -> Result<(), BundleError> {
        let chain = bundle.header.chain;
        let h = bundle.header.height;
        let state = &self.chains[chain.index()];
        let expected_parent = state.hash_at(state.tip()).expect("tip hash always known");
        if bundle.header.parent != expected_parent {
            return Err(BundleError::ParentMismatch { chain, height: h });
        }
        // Validity check 3: the tip list must dominate the parent's.
        if state.tip() > Height(0) {
            if let Some(parent_hdr) = state.header(state.tip()) {
                if !bundle.header.tips.dominates(&parent_hdr.tips) {
                    return Err(BundleError::TipRegression { chain, height: h });
                }
            }
        }
        let tips = bundle.header.tips.clone();
        self.chains[chain.index()].append(bundle);
        let pt = &mut self.producer_tips[chain.index()];
        pt.merge(&tips);
        pt.observe(chain, h); // a producer trivially holds its own bundle
        Ok(())
    }

    /// The acknowledgement heights for `target` chain as seen from all
    /// `n_c` consensus nodes (this node's own observation substituted for
    /// its slot, when it is a consensus node).
    pub fn acked_heights(&self, target: ChainId) -> Vec<Height> {
        (0..self.chains.len())
            .map(|j| {
                if Some(ChainId(j as u32)) == self.me {
                    self.chains[target.index()].tip()
                } else {
                    self.producer_tips[j].get(target)
                }
            })
            .collect()
    }

    /// The leader's cut (§III-B): per chain, the highest height received by
    /// at least `n_c − f` nodes, clamped to what this node actually holds
    /// and never below the given `base`. Banned chains are cut empty.
    pub fn cut(&self, base: &[Height]) -> Vec<Height> {
        assert_eq!(base.len(), self.chains.len(), "base must cover every chain");
        (0..self.chains.len())
            .map(|i| {
                let chain = ChainId(i as u32);
                if self.ban.is_banned(chain) {
                    return base[i];
                }
                let quorum = quorum_cut_height(&self.acked_heights(chain), self.f);
                quorum.min(self.chains[i].tip()).max(base[i])
            })
            .collect()
    }

    /// The committed height of every chain (the default block base).
    pub fn committed_base(&self) -> Vec<Height> {
        self.chains.iter().map(BundleChain::committed).collect()
    }

    /// Builds and signs a Predis block extending `parent` with base `base`
    /// (pass [`Mempool::committed_base`] for sequential protocols, or the
    /// parent block's cut for pipelined ones). Returns `None` if no chain
    /// has new bundles to confirm.
    pub fn build_block(
        &self,
        view: View,
        parent: Hash,
        base: &[Height],
        key: &Keypair,
    ) -> Option<PredisBlock> {
        let cut = self.cut(base);
        if cut.iter().zip(base).all(|(c, b)| c == b) {
            return None;
        }
        let headers = (0..self.chains.len())
            .map(|i| {
                if cut[i] > base[i] {
                    Some(
                        self.chains[i]
                            .hash_at(cut[i])
                            .expect("cut is clamped to held tip"),
                    )
                } else {
                    None
                }
            })
            .collect();
        let tx_root = self.slice_tx_root(base, &cut);
        let mut block = PredisBlock {
            parent,
            view,
            base: base.to_vec(),
            cut,
            headers,
            tx_root,
            signature: Signature::default(),
        };
        block.sign(key);
        debug_assert!(block.well_formed());
        Some(block)
    }

    /// Merkle root over all transactions in the slices `(base, cut]`, chain
    /// by chain.
    /// Hierarchical commitment to the slice's transactions: a Merkle root
    /// over the per-bundle `tx_root`s in `(base, cut]`, chain by chain.
    ///
    /// Each leaf is itself the Merkle root of one bundle's transactions,
    /// checked against the body when the bundle was inserted — so this
    /// commits to exactly the same transaction sequence as a flat root over
    /// every transaction, while costing O(#bundles) instead of O(#txs)
    /// hashes. That difference is what keeps per-replica block validation
    /// constant-ish: replicas validate every proposal, and a slice holds
    /// hundreds of transactions but only a handful of bundles.
    fn slice_tx_root(&self, base: &[Height], cut: &[Height]) -> Hash {
        let mut leaves = Vec::new();
        for (i, chain) in self.chains.iter().enumerate() {
            for bundle in chain.range(base[i], cut[i]) {
                leaves.push(bundle.header.tx_root);
            }
        }
        MerkleTree::from_leaves(leaves).root()
    }

    /// Validates a received Predis block against `expected_base` (§III-B
    /// checks 2-4; parent-block and leader-signature checks belong to the
    /// consensus layer).
    ///
    /// # Errors
    ///
    /// See [`BlockValidationError`]; in the [`BlockValidationError::MissingBundles`]
    /// case the node should fetch the listed heights and revalidate.
    pub fn validate_block(
        &self,
        block: &PredisBlock,
        expected_base: &[Height],
    ) -> Result<(), BlockValidationError> {
        if !block.well_formed() || block.chain_count() != self.chains.len() {
            return Err(BlockValidationError::Malformed);
        }
        if block.base.as_slice() != expected_base {
            return Err(BlockValidationError::BaseMismatch);
        }
        let mut missing = Vec::new();
        for i in 0..self.chains.len() {
            let chain = ChainId(i as u32);
            if block.cut[i] == block.base[i] {
                continue;
            }
            if self.ban.is_banned(chain) {
                return Err(BlockValidationError::BannedProducer(chain));
            }
            let state = &self.chains[i];
            if state.tip() < block.cut[i] {
                missing.extend(
                    state
                        .missing_in(state.tip(), block.cut[i])
                        .into_iter()
                        .map(|h| (chain, h)),
                );
                // Heights between base and our tip might also be pruned
                // only if committed > base, which BaseMismatch excludes.
                continue;
            }
            let local = state
                .hash_at(block.cut[i])
                .ok_or(BlockValidationError::Malformed)?;
            let claimed = block.headers[i].expect("well-formed");
            if local != claimed {
                return Err(BlockValidationError::HeaderMismatch(chain));
            }
        }
        if !missing.is_empty() {
            return Err(BlockValidationError::MissingBundles(missing));
        }
        if self.slice_tx_root(&block.base, &block.cut) != block.tx_root {
            return Err(BlockValidationError::TxRootMismatch);
        }
        Ok(())
    }

    /// The transactions a valid block confirms, in canonical order.
    /// Returns `None` if bundles are missing locally.
    pub fn extract_txs(&self, block: &PredisBlock) -> Option<Vec<Transaction>> {
        let mut txs = Vec::new();
        for (i, chain) in self.chains.iter().enumerate() {
            if !chain.holds_range(block.base[i], block.cut[i]) {
                return None;
            }
            for bundle in chain.range(block.base[i], block.cut[i]) {
                txs.extend_from_slice(&bundle.txs);
            }
        }
        Some(txs)
    }

    /// Total transactions a block confirms (cheaper than
    /// [`Mempool::extract_txs`]).
    pub fn count_txs(&self, block: &PredisBlock) -> Option<u64> {
        let mut n = 0u64;
        for (i, chain) in self.chains.iter().enumerate() {
            if !chain.holds_range(block.base[i], block.cut[i]) {
                return None;
            }
            n += chain
                .range(block.base[i], block.cut[i])
                .map(|b| b.txs.len() as u64)
                .sum::<u64>();
        }
        Some(n)
    }

    /// Marks a block's cut as committed and prunes bundle bodies below the
    /// new committed heights. Returns the number of bundles pruned.
    pub fn commit_cut(&mut self, cut: &[Height]) -> usize {
        let mut pruned = 0;
        for (i, chain) in self.chains.iter_mut().enumerate() {
            chain.commit_to(cut[i]);
            pruned += chain.prune_committed();
        }
        pruned
    }

    /// Fast-forwards every chain to the committed anchors of a block
    /// received via crash-recovery state transfer: chain `i` jumps to
    /// `cut[i]` with the block's header hash as the new anchor, after which
    /// live bundles extend it normally. Returns how many parked bundles
    /// became appendable and were absorbed.
    pub fn fast_forward(&mut self, block: &PredisBlock) -> u64 {
        let mut absorbed = 0;
        for i in 0..self.chains.len() {
            if let Some(hash) = block.headers[i] {
                self.chains[i].fast_forward(block.cut[i], hash);
                // Cascade parked successors onto the new anchor.
                loop {
                    let next = self.chains[i].tip().next();
                    match self.chains[i].take_parked(next) {
                        Some(parked) => {
                            if self.try_append(parked).is_ok() {
                                absorbed += 1;
                            } else {
                                break;
                            }
                        }
                        None => break,
                    }
                }
            }
        }
        absorbed
    }

    /// Pardons a banned producer (§III-E: a banned node "has the option to
    /// propose a new genesis bundle to rejoin"): lifts the ban and rolls the
    /// producer's chain back to its committed prefix, which every honest
    /// node agrees on, so the producer can rebuild from there. Returns
    /// `false` if the chain was not banned.
    pub fn pardon(&mut self, chain: ChainId) -> bool {
        if !self.ban.unban(chain) {
            return false;
        }
        self.chains[chain.index()].rollback_to_committed();
        // Stale acknowledgements about the discarded fork are reset.
        self.producer_tips[chain.index()] = TipList::new(self.chains.len());
        true
    }

    /// The bundle at `(chain, height)` if held (for serving fetch requests).
    pub fn get_bundle(&self, chain: ChainId, height: Height) -> Option<&Bundle> {
        self.chains.get(chain.index())?.bundle(height)
    }

    /// The bundle at `(chain, height)` as a shared handle: re-serving it to
    /// a peer clones the `Arc`, not the transaction body.
    pub fn get_bundle_shared(&self, chain: ChainId, height: Height) -> Option<&SizedBundle> {
        self.chains.get(chain.index())?.bundle_shared(height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predis_crypto::{Keypair, SignerId};
    use predis_types::{ClientId, Transaction, TxId};

    const N: usize = 4;
    const F: usize = 1;

    fn key(chain: u32) -> Keypair {
        Keypair::for_node(SignerId(chain))
    }

    /// Builds a bundle for `chain` at `height` whose parent is looked up in
    /// `pool`, with an explicit tip list.
    fn mk_bundle(pool: &Mempool, chain: u32, height: u64, tips: TipList, salt: u64) -> Bundle {
        let parent = pool
            .chain(ChainId(chain))
            .hash_at(Height(height - 1))
            .expect("parent known");
        Bundle::build(
            ChainId(chain),
            Height(height),
            parent,
            tips,
            vec![Transaction::new(
                TxId(height * 1000 + chain as u64 + salt),
                ClientId(0),
                0,
            )],
            Hash::ZERO,
            &key(chain),
        )
    }

    /// Fills the pool: every chain grows to `height`, every producer's tip
    /// list acknowledges everything it has "seen" (full mesh, no lag).
    fn filled_pool(me: u32, height: u64) -> Mempool {
        let mut pool = Mempool::new(N, F, Some(ChainId(me)));
        for h in 1..=height {
            for c in 0..N as u32 {
                // Every producer acknowledges every chain at `h`: models a
                // settled round where all bundles have propagated.
                let tips = TipList::from(vec![Height(h); N]);
                let b = mk_bundle(&pool, c, h, tips, 0);
                pool.insert_bundle(b).unwrap();
            }
        }
        pool
    }

    #[test]
    fn inserts_extend_chains() {
        let pool = filled_pool(0, 3);
        for c in 0..N as u32 {
            assert_eq!(pool.chain(ChainId(c)).tip(), Height(3));
        }
        assert_eq!(pool.my_tips().heights(), &[Height(3); 4]);
    }

    #[test]
    fn duplicate_is_already_known() {
        let mut pool = Mempool::new(N, F, Some(ChainId(0)));
        let b = mk_bundle(&pool, 1, 1, TipList::new(N), 0);
        assert!(matches!(
            pool.insert_bundle(b.clone()).unwrap(),
            InsertOutcome::Inserted { .. }
        ));
        assert_eq!(pool.insert_bundle(b).unwrap(), InsertOutcome::AlreadyKnown);
    }

    #[test]
    fn out_of_order_parks_and_cascades() {
        let mut pool = Mempool::new(N, F, Some(ChainId(0)));
        let b1 = mk_bundle(&pool, 2, 1, TipList::new(N), 0);
        // Build b2 against a temp pool that has b1.
        let mut tmp = Mempool::new(N, F, Some(ChainId(0)));
        tmp.insert_bundle(b1.clone()).unwrap();
        let b2 = mk_bundle(&tmp, 2, 2, TipList::new(N), 0);
        // Deliver out of order.
        assert_eq!(
            pool.insert_bundle(b2).unwrap(),
            InsertOutcome::Parked {
                waiting_for: Height(1)
            }
        );
        let out = pool.insert_bundle(b1).unwrap();
        assert_eq!(
            out,
            InsertOutcome::Inserted {
                chain: ChainId(2),
                new_tip: Height(2),
                absorbed: 1
            }
        );
    }

    #[test]
    fn equivocation_is_detected_and_banned() {
        let mut pool = Mempool::new(N, F, Some(ChainId(0)));
        let a = mk_bundle(&pool, 3, 1, TipList::new(N), 0);
        let b = mk_bundle(&pool, 3, 1, TipList::new(N), 7); // same parent, different txs
        pool.insert_bundle(a).unwrap();
        match pool.insert_bundle(b).unwrap() {
            InsertOutcome::Conflict(proof) => {
                assert!(proof.verify());
                assert_eq!(proof.offender(), ChainId(3));
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(pool.ban_list().is_banned(ChainId(3)));
        // Further bundles from the banned chain are ignored.
        let pool2 = Mempool::new(N, F, Some(ChainId(0)));
        let c = mk_bundle(&pool2, 3, 1, TipList::new(N), 9);
        let _ = pool2; // silence
        assert_eq!(pool.insert_bundle(c).unwrap(), InsertOutcome::IgnoredBanned);
    }

    #[test]
    fn tip_regression_rejected() {
        let mut pool = Mempool::new(N, F, Some(ChainId(0)));
        let high_tips = TipList::from(vec![Height(2); N]);
        let b1 = Bundle::build(
            ChainId(1),
            Height(1),
            Hash::ZERO,
            high_tips,
            vec![],
            Hash::ZERO,
            &key(1),
        );
        pool.insert_bundle(b1).unwrap();
        let parent = pool.chain(ChainId(1)).hash_at(Height(1)).unwrap();
        let regressed = Bundle::build(
            ChainId(1),
            Height(2),
            parent,
            TipList::new(N), // all zeros: regression
            vec![],
            Hash::ZERO,
            &key(1),
        );
        assert_eq!(
            pool.insert_bundle(regressed),
            Err(BundleError::TipRegression {
                chain: ChainId(1),
                height: Height(2)
            })
        );
    }

    #[test]
    fn parent_mismatch_rejected() {
        let mut pool = Mempool::new(N, F, Some(ChainId(0)));
        let bad = Bundle::build(
            ChainId(0),
            Height(1),
            Hash::digest(b"not-zero"),
            TipList::new(N),
            vec![],
            Hash::ZERO,
            &key(0),
        );
        assert!(matches!(
            pool.insert_bundle(bad),
            Err(BundleError::ParentMismatch { .. })
        ));
    }

    #[test]
    fn cut_follows_quorum_acks() {
        // All chains at height 3 with full acks: cut everything.
        let pool = filled_pool(0, 3);
        let base = pool.committed_base();
        assert_eq!(pool.cut(&base), vec![Height(3); 4]);
    }

    #[test]
    fn cut_limited_by_slow_acks() {
        // Chains grow to 3 but producers only acknowledge height 1 of chain
        // 0: the quorum for chain 0 stalls at 1 (leader's own ack can't
        // carry it alone).
        let mut pool = Mempool::new(N, F, Some(ChainId(0)));
        for h in 1..=3u64 {
            for c in 0..N as u32 {
                let mut tips = TipList::new(N);
                for j in 0..N as u32 {
                    // Everyone acks everything except chain 0, acked to 1.
                    let cap = if j == 0 { 1 } else { h };
                    tips.observe(ChainId(j), Height(cap.min(h)));
                }
                let b = mk_bundle(&pool, c, h, tips, 0);
                pool.insert_bundle(b).unwrap();
            }
        }
        let cut = pool.cut(&pool.committed_base());
        assert_eq!(cut[0], Height(1), "chain 0 under-acked");
        assert_eq!(cut[1], Height(3));
    }

    #[test]
    fn banned_chain_is_cut_empty() {
        let mut pool = filled_pool(0, 2);
        let a = pool.chain(ChainId(1)).header(Height(2)).unwrap().clone();
        // Construct a fake sibling to ban chain 1.
        let sibling = Bundle::build(
            ChainId(1),
            Height(2),
            a.parent,
            a.tips.clone(),
            vec![Transaction::new(TxId(424242), ClientId(1), 0)],
            Hash::ZERO,
            &key(1),
        );
        let proof = ConflictProof {
            a,
            b: sibling.header,
        };
        assert!(pool.register_conflict(proof));
        let cut = pool.cut(&pool.committed_base());
        assert_eq!(cut[1], Height(0));
        assert_eq!(cut[0], Height(2));
    }

    #[test]
    fn build_and_validate_roundtrip() {
        let leader = filled_pool(0, 3);
        let base = leader.committed_base();
        let block = leader
            .build_block(View(1), Hash::ZERO, &base, &key(0))
            .expect("non-empty");
        assert!(block.verify_signature(SignerId(0)));
        assert_eq!(block.bundle_count(), 12); // 4 chains x 3 bundles

        // A replica with identical state validates and extracts the same txs.
        let replica = filled_pool(1, 3);
        replica.validate_block(&block, &base).expect("valid");
        let txs_l = leader.extract_txs(&block).unwrap();
        let txs_r = replica.extract_txs(&block).unwrap();
        assert_eq!(txs_l, txs_r); // Theorem 3.3: identical candidate blocks
        assert_eq!(replica.count_txs(&block), Some(txs_l.len() as u64));
    }

    #[test]
    fn validate_detects_missing_bundles() {
        let leader = filled_pool(0, 3);
        let base = leader.committed_base();
        let block = leader
            .build_block(View(1), Hash::ZERO, &base, &key(0))
            .unwrap();
        // A replica that only has height 2 everywhere.
        let behind = filled_pool(1, 2);
        match behind.validate_block(&block, &base) {
            Err(BlockValidationError::MissingBundles(m)) => {
                assert_eq!(m.len(), 4);
                assert!(m.iter().all(|&(_, h)| h == Height(3)));
            }
            other => panic!("expected missing bundles, got {other:?}"),
        }
        assert_eq!(behind.extract_txs(&block), None);
    }

    #[test]
    fn validate_detects_tx_root_tampering() {
        let leader = filled_pool(0, 2);
        let base = leader.committed_base();
        let mut block = leader
            .build_block(View(1), Hash::ZERO, &base, &key(0))
            .unwrap();
        block.tx_root = Hash::digest(b"evil");
        block.sign(&key(0)); // re-signed by the (malicious) leader
        let replica = filled_pool(1, 2);
        assert_eq!(
            replica.validate_block(&block, &base),
            Err(BlockValidationError::TxRootMismatch)
        );
    }

    #[test]
    fn validate_detects_base_mismatch() {
        let leader = filled_pool(0, 2);
        let base = leader.committed_base();
        let block = leader
            .build_block(View(1), Hash::ZERO, &base, &key(0))
            .unwrap();
        let replica = filled_pool(1, 2);
        let wrong_base = vec![Height(1); 4];
        assert_eq!(
            replica.validate_block(&block, &wrong_base),
            Err(BlockValidationError::BaseMismatch)
        );
    }

    #[test]
    fn commit_advances_base_and_prunes() {
        let mut pool = filled_pool(0, 3);
        let base = pool.committed_base();
        let block = pool
            .build_block(View(1), Hash::ZERO, &base, &key(0))
            .unwrap();
        let pruned = pool.commit_cut(&block.cut);
        assert_eq!(pruned, 12);
        assert_eq!(pool.committed_base(), vec![Height(3); 4]);
        // Next block over the same state is empty.
        assert!(pool
            .build_block(View(2), block.hash(), &pool.committed_base(), &key(0))
            .is_none());
    }

    #[test]
    fn empty_cut_produces_no_block() {
        let pool = Mempool::new(N, F, Some(ChainId(0)));
        assert!(pool
            .build_block(View(1), Hash::ZERO, &pool.committed_base(), &key(0))
            .is_none());
    }

    #[test]
    fn pardon_rolls_back_and_allows_rejoin() {
        // Ban chain 1 via equivocation, commit nothing, then pardon: the
        // chain rolls back to the committed prefix and fresh bundles are
        // accepted again.
        let mut pool = filled_pool(0, 2);
        let base = pool.committed_base();
        let block = pool
            .build_block(View(1), Hash::ZERO, &base, &key(0))
            .unwrap();
        pool.commit_cut(&block.cut); // committed = 2 everywhere

        // Grow chain 1 to height 3, then ban it with a forged sibling.
        let tips = TipList::from(vec![Height(3); N]);
        let b3 = mk_bundle(&pool, 1, 3, tips.clone(), 0);
        pool.insert_bundle(b3.clone()).unwrap();
        let sibling = Bundle::build(
            ChainId(1),
            Height(3),
            b3.header.parent,
            tips,
            vec![Transaction::new(TxId(31337), ClientId(1), 0)],
            Hash::ZERO,
            &key(1),
        );
        match pool.insert_bundle(sibling).unwrap() {
            InsertOutcome::Conflict(_) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
        assert!(pool.ban_list().is_banned(ChainId(1)));
        // Banned: cut excludes chain 1 even though it has height 3.
        assert_eq!(pool.cut(&pool.committed_base())[1], Height(2));

        // Pardon: chain rolls back to the committed height 2.
        assert!(pool.pardon(ChainId(1)));
        assert!(!pool.ban_list().is_banned(ChainId(1)));
        assert_eq!(pool.chain(ChainId(1)).tip(), Height(2));
        assert!(!pool.pardon(ChainId(1)), "double pardon is a no-op");

        // The producer restarts from the committed prefix and is accepted.
        let parent = pool.chain(ChainId(1)).hash_at(Height(2)).unwrap();
        let fresh = Bundle::build(
            ChainId(1),
            Height(3),
            parent,
            TipList::from(vec![Height(3); N]),
            vec![Transaction::new(TxId(99), ClientId(0), 0)],
            Hash::ZERO,
            &key(1),
        );
        assert!(matches!(
            pool.insert_bundle(fresh).unwrap(),
            InsertOutcome::Inserted { .. }
        ));
        assert_eq!(pool.chain(ChainId(1)).tip(), Height(3));
    }

    #[test]
    fn producer_restart_matches_pardoned_chain() {
        use crate::producer::{BundleProducer, TxPool};
        let mut pool = filled_pool(1, 2);
        let base = pool.committed_base();
        let block = pool
            .build_block(View(1), Hash::ZERO, &base, &key(1))
            .unwrap();
        pool.commit_cut(&block.cut);
        // A producer that equivocated restarts at committed + 1.
        let committed = pool.chain(ChainId(0)).committed();
        let parent = pool.chain(ChainId(0)).hash_at(committed).unwrap();
        let mut producer = BundleProducer::new(ChainId(0), key(0), 10);
        producer.restart_at(committed.next(), parent);
        let mut txpool = TxPool::new();
        txpool.push(Transaction::new(TxId(5), ClientId(0), 0));
        let b = producer
            .produce(&mut txpool, pool.my_tips(), Hash::ZERO, false)
            .unwrap();
        assert!(matches!(
            pool.insert_bundle(b).unwrap(),
            InsertOutcome::Inserted { .. }
        ));
    }

    #[test]
    fn get_bundle_serves_fetches() {
        let pool = filled_pool(0, 2);
        assert!(pool.get_bundle(ChainId(1), Height(2)).is_some());
        assert!(pool.get_bundle(ChainId(1), Height(5)).is_none());
        assert!(pool.get_bundle(ChainId(9), Height(1)).is_none());
    }
}
