//! Workspace-local stand-in for `proptest`.
//!
//! The registry is unreachable in the build environment, so this shim
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * integer-range strategies (`0u64..100`, `1u8..=255`, ...),
//! * [`any`] for integers, `bool`, and `[u8; N]`,
//! * [`collection::vec`] with fixed or ranged lengths,
//! * [`bool::ANY`].
//!
//! Each test function runs `cases` times with inputs drawn from a
//! deterministic RNG seeded from the test's module path and case index, so
//! failures reproduce exactly. There is no shrinking: a failing case panics
//! with the case index and message.

use core::marker::PhantomData;

/// Per-test deterministic randomness.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic RNG for one test case.
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds from the test's identity and case index (FNV-1a over the
        /// name, mixed with the case number), so every run of the suite
        /// draws identical inputs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(SmallRng::seed_from_u64(
                h ^ ((case as u64) << 32 | case as u64),
            ))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "cannot sample empty range");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

use test_runner::TestRng;

/// How a `proptest!` block runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed `prop_assert*` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values of some type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.below(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "cannot sample empty range");
                if hi - lo == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + rng.next_u64() % (hi - lo + 1)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Arbitrary values of the full domain of a type.
pub mod arbitrary {
    use super::{PhantomData, Strategy, TestRng};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for b in out.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// Strategy returned by [`any`](super::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The full-domain strategy for `T` (`any::<u64>()`, `any::<[u8; 16]>()`, ...).
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(PhantomData)
}

/// Boolean strategies.
pub mod bool {
    use super::arbitrary::Any;
    use super::PhantomData;

    /// Either boolean, uniformly.
    pub const ANY: Any<core::primitive::bool> = Any(PhantomData);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A number of elements: exact, or uniformly drawn from a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (a count or a range of counts).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` (the attribute is written inside the block, as in real
/// proptest) running `cases` times with fresh sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion for [`proptest!`]; not part of the public surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __l, __r
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*);
            }
        }
    };
}

/// Fails the current case unless the two values compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a), stringify!($b), __l
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, $($fmt)*);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 1u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u32..4, 2..6), w in crate::collection::vec(0u32..4, 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            for e in &v {
                prop_assert!(*e < 4);
            }
        }

        #[test]
        fn any_array_and_bool_compile(bytes in any::<[u8; 16]>(), flag in crate::bool::ANY) {
            prop_assert_eq!(bytes.len(), 16);
            prop_assert!(usize::from(flag) <= 1);
        }
    }

    #[test]
    fn same_case_reproduces_identical_inputs() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let a = (0u64..1000).sample(&mut TestRng::for_case("x", 7));
        let b = (0u64..1000).sample(&mut TestRng::for_case("x", 7));
        assert_eq!(a, b);
        let c = (0u64..1000).sample(&mut TestRng::for_case("x", 8));
        let d = (0u64..1000).sample(&mut TestRng::for_case("y", 7));
        // Different case or test name almost surely moves the draw.
        assert!(a != c || a != d);
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                #[allow(unused)]
                fn always_fails(x in 0u64..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(r.is_err());
    }
}
