//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal implementation of the exact API surface it uses:
//!
//! * [`rngs::SmallRng`] — a deterministic xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`],
//! * [`seq::SliceRandom::choose`] and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only contract the simulator needs: the same seed
//! always yields the same stream. Statistical quality is that of
//! xoshiro256++, which is more than adequate for discrete-event scheduling
//! (and is, in fact, the same family the real `SmallRng` uses).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from the "standard" distribution of an RNG.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range of values that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// `choose` and `shuffle`, as the real crate's `SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_hits() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
