//! Workspace-local stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its protocol types as
//! forward-compatible markers, but nothing actually serializes through serde
//! (`serde_json` is not a dependency anywhere; the telemetry crate hand-rolls
//! its JSON). Since the registry is unreachable in the build environment,
//! this shim keeps those derives compiling: the traits are empty markers and
//! the derive macros expand to nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
