//! Empty-expansion derive macros for the workspace-local serde shim.
//!
//! The workspace's `#[derive(Serialize, Deserialize)]` attributes are
//! forward-compatible markers only — no code path serializes through serde —
//! so these derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
