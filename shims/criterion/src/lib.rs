//! Workspace-local stand-in for `criterion`.
//!
//! The registry is unreachable in the build environment, so this shim keeps
//! the workspace's `[[bench]]` targets compiling and running. It executes
//! each benchmark closure `sample_size` times and prints the mean wall-clock
//! time per iteration — enough to eyeball regressions locally, with none of
//! criterion's statistics, warm-up, or report output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints, accepted for API compatibility and otherwise unused.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` over fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn report(id: &str, total: Duration, iters: u64) {
    if iters == 0 {
        println!("bench {id:<40} (no iterations)");
        return;
    }
    let per = total.as_secs_f64() / iters as f64;
    let (value, unit) = if per >= 1.0 {
        (per, "s")
    } else if per >= 1e-3 {
        (per * 1e3, "ms")
    } else if per >= 1e-6 {
        (per * 1e6, "us")
    } else {
        (per * 1e9, "ns")
    };
    println!("bench {id:<40} {value:>10.2} {unit}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.as_ref()), b.total, b.iters);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness configuration and entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Overrides the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            samples,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(id.as_ref(), b.total, b.iters);
        self
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)*
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0;
        c.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert_eq!(ran, 3);
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut seen = Vec::new();
        let mut next = 0u32;
        g.bench_function(format!("batched-{}", 1), |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |i| seen.push(i),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(seen, vec![1, 2]);
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(simple_form, noop_bench);
    criterion_group! {
        name = config_form;
        config = Criterion::default().sample_size(2);
        targets = noop_bench, noop_bench
    }

    #[test]
    fn both_group_forms_run() {
        simple_form();
        config_form();
    }
}
