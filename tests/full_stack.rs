//! Full-stack integration: every paper protocol commits through the public
//! facade; the Fig. 7 star/Multi-Zone crossover holds; experiments are
//! deterministic end to end.

use predis::experiments::{
    DistMode, NetEnv, PropagationSetup, Protocol, ThroughputSetup, Topology, TopologySetup,
};
use predis::model::{predis_tps, ModelInputs};
use predis::sim::SimDuration;

fn quick(protocol: Protocol, env: NetEnv, seed: u64) -> ThroughputSetup {
    ThroughputSetup {
        protocol,
        n_c: 4,
        clients: 4,
        offered_tps: 2_000.0,
        env,
        duration_secs: 6,
        warmup_secs: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn every_protocol_commits_in_both_environments() {
    for env in [NetEnv::Lan, NetEnv::Wan] {
        for protocol in [
            Protocol::Pbft,
            Protocol::PPbft,
            Protocol::HotStuff,
            Protocol::PHs,
            Protocol::Narwhal,
            Protocol::Stratus,
        ] {
            let s = quick(protocol, env, 3).run();
            assert!(
                s.throughput_tps > 1_200.0,
                "{} in {env:?}: only {:.0} tps at 2k offered",
                protocol.name(),
                s.throughput_tps
            );
            assert!(
                s.mean_latency_ms.is_finite() && s.mean_latency_ms > 0.0,
                "{} in {env:?}: bad latency {}",
                protocol.name(),
                s.mean_latency_ms
            );
        }
    }
}

#[test]
fn predis_latency_beats_certificate_mempools() {
    // Fig. 5's latency ordering: Predis < Stratus < Narwhal (fewer
    // certificate round-trips before a microblock is proposable).
    let phs = quick(Protocol::PHs, NetEnv::Wan, 5).run();
    let stratus = quick(Protocol::Stratus, NetEnv::Wan, 5).run();
    let narwhal = quick(Protocol::Narwhal, NetEnv::Wan, 5).run();
    assert!(
        phs.mean_latency_ms < narwhal.mean_latency_ms,
        "Predis {:.0} ms should beat Narwhal {:.0} ms",
        phs.mean_latency_ms,
        narwhal.mean_latency_ms
    );
    assert!(
        stratus.mean_latency_ms <= narwhal.mean_latency_ms * 1.05,
        "Stratus {:.0} ms should not exceed Narwhal {:.0} ms",
        stratus.mean_latency_ms,
        narwhal.mean_latency_ms
    );
}

#[test]
fn fig7_crossover_star_vs_multizone() {
    let run = |mode, fulls| {
        TopologySetup {
            n_c: 4,
            full_nodes: fulls,
            mode,
            duration_secs: 10,
            warmup_secs: 4,
            seed: 5,
            ..Default::default()
        }
        .run()
        .throughput_tps
    };
    // Few full nodes: star's direct pushes are cheap.
    let star_small = run(DistMode::Star, 8);
    let mz_small = run(DistMode::MultiZone { zones: 12 }, 8);
    // Many full nodes: star pays per node, Multi-Zone stays O(n_c).
    let star_big = run(DistMode::Star, 48);
    let mz_big = run(DistMode::MultiZone { zones: 12 }, 48);
    assert!(
        star_small > mz_small,
        "at 8 full nodes star ({star_small:.0}) should beat multizone ({mz_small:.0})"
    );
    assert!(
        mz_big > 1.3 * star_big,
        "at 48 full nodes multizone ({mz_big:.0}) should clearly beat star ({star_big:.0})"
    );
    // Multi-Zone's throughput must not collapse as full nodes grow.
    assert!(
        mz_big > 0.5 * mz_small,
        "multizone must stay roughly flat: {mz_small:.0} -> {mz_big:.0}"
    );
}

#[test]
fn saturated_predis_tracks_analytic_model() {
    // A saturated P-PBFT run should land within a reasonable fraction of
    // the Eq. 2 upper bound (the paper lists why it can't be reached:
    // quorum pre-condition, voting/reply bandwidth, implementation).
    let s = ThroughputSetup {
        protocol: Protocol::PPbft,
        n_c: 4,
        clients: 8,
        offered_tps: 50_000.0,
        env: NetEnv::Lan,
        duration_secs: 10,
        warmup_secs: 4,
        seed: 17,
        ..Default::default()
    }
    .run();
    let bound = predis_tps(ModelInputs::paper_default(4));
    assert!(
        s.throughput_tps < bound,
        "simulation ({:.0}) cannot exceed the Eq.2 bound ({bound:.0})",
        s.throughput_tps
    );
    assert!(
        s.throughput_tps > 0.5 * bound,
        "simulation ({:.0}) should reach >50% of the Eq.2 bound ({bound:.0})",
        s.throughput_tps
    );
}

#[test]
fn experiments_are_deterministic() {
    let a = quick(Protocol::PPbft, NetEnv::Wan, 123).run();
    let b = quick(Protocol::PPbft, NetEnv::Wan, 123).run();
    assert_eq!(a.committed_txs, b.committed_txs);
    assert_eq!(a.p99_latency_ms, b.p99_latency_ms);

    let p = PropagationSetup {
        full_nodes: 20,
        blocks: 2,
        block_bytes: 2_000_000,
        interval: SimDuration::from_secs(3),
        seed: 123,
        ..Default::default()
    };
    let ra = p.run(&Topology::MultiZone { zones: 4 });
    let rb = p.run(&Topology::MultiZone { zones: 4 });
    assert_eq!(ra, rb);
}

#[test]
fn heterogeneous_bandwidth_tracks_eq2_general_form() {
    use predis::model::predis_tps_heterogeneous;
    // One fast node (200 Mbps) among three standard ones: Eq. 2's
    // heterogeneous form predicts the committee-wide bound.
    let mbps = vec![200u64, 100, 100, 100];
    let bound = predis_tps_heterogeneous(
        &mbps.iter().map(|&m| m * 1_000_000).collect::<Vec<_>>(),
        512,
    );
    let s = ThroughputSetup {
        protocol: Protocol::PPbft,
        n_c: 4,
        clients: 8,
        offered_tps: 60_000.0,
        env: NetEnv::Lan,
        per_node_mbps: mbps,
        duration_secs: 10,
        warmup_secs: 4,
        seed: 29,
        ..Default::default()
    }
    .run();
    assert!(
        s.throughput_tps < bound,
        "sim {:.0} cannot exceed the heterogeneous bound {bound:.0}",
        s.throughput_tps
    );
    assert!(
        s.throughput_tps > 0.55 * bound,
        "sim {:.0} should reach a good fraction of {bound:.0}",
        s.throughput_tps
    );
    // And it should exceed the homogeneous-100Mbps committee's capacity.
    let homo = ThroughputSetup {
        protocol: Protocol::PPbft,
        n_c: 4,
        clients: 8,
        offered_tps: 60_000.0,
        env: NetEnv::Lan,
        duration_secs: 10,
        warmup_secs: 4,
        seed: 29,
        ..Default::default()
    }
    .run();
    assert!(
        s.throughput_tps > homo.throughput_tps,
        "a faster member must raise committee throughput: {:.0} vs {:.0}",
        s.throughput_tps,
        homo.throughput_tps
    );
}

#[test]
fn locality_zones_cut_wan_propagation_latency() {
    // §IV-A: zone division "is based on the locality ... of nodes". Over
    // the 4-region WAN, aligning zones with regions keeps intra-zone
    // forwarding local and beats scattering each zone across the country.
    use predis::sim::LatencyModel;
    let base = PropagationSetup {
        n_c: 8,
        full_nodes: 48,
        block_bytes: 5_000_000,
        interval: SimDuration::from_secs(5),
        blocks: 4,
        latency: LatencyModel::cn_wan(),
        seed: 33,
        ..Default::default()
    };
    let scattered = base.run(&Topology::MultiZone { zones: 4 });
    let local = PropagationSetup {
        locality_zones: true,
        ..base
    }
    .run(&Topology::MultiZone { zones: 4 });
    assert_eq!(local.complete_blocks, 4);
    assert_eq!(scattered.complete_blocks, 4);
    assert!(
        local.to_100_ms < scattered.to_100_ms,
        "locality zones ({:.0} ms) should beat scattered zones ({:.0} ms)",
        local.to_100_ms,
        scattered.to_100_ms
    );
}
