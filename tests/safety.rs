//! Safety properties of Predis (Theorems 3.1–3.3), checked with
//! property-based adversarial schedules.

use proptest::prelude::*;

use predis::crypto::{Hash, Keypair, SignerId};
use predis::mempool::{InsertOutcome, Mempool};
use predis::types::{
    quorum_cut_height, Bundle, ChainId, ClientId, ConflictProof, Height, SizedBundle, TipList,
    Transaction, TxId, View, WireSize,
};

const N: usize = 4;
const F: usize = 1;

/// Builds the full bundle grid (every chain up to `heights`) with fully
/// acknowledging tip lists.
fn bundle_grid(heights: u64) -> Vec<Bundle> {
    let mut reference = Mempool::new(N, F, None);
    let mut out = Vec::new();
    let mut tx = 0u64;
    for h in 1..=heights {
        for c in 0..N as u32 {
            let parent = reference
                .chain(ChainId(c))
                .hash_at(Height(h - 1))
                .expect("parent");
            let txs: Vec<Transaction> = (0..5)
                .map(|_| {
                    tx += 1;
                    Transaction::new(TxId(tx), ClientId(0), 0)
                })
                .collect();
            let b = Bundle::build(
                ChainId(c),
                Height(h),
                parent,
                TipList::from(vec![Height(h); N]),
                txs,
                Hash::ZERO,
                &Keypair::for_node(SignerId(c)),
            );
            reference.insert_bundle(b.clone()).expect("valid");
            out.push(b);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.3: whatever order (and duplication) bundles arrive in, two
    /// honest nodes that can validate a Predis block reconstruct identical
    /// candidate blocks.
    #[test]
    fn consistent_extraction_under_any_delivery_order(
        heights in 1u64..5,
        seed in any::<u64>(),
        duplicate in proptest::bool::ANY,
    ) {
        let bundles = bundle_grid(heights);

        // Leader receives in canonical order and cuts.
        let mut leader = Mempool::new(N, F, Some(ChainId(0)));
        for b in &bundles {
            leader.insert_bundle(b.clone()).unwrap();
        }
        let base = leader.committed_base();
        let block = leader
            .build_block(View(1), Hash::ZERO, &base, &Keypair::for_node(SignerId(0)))
            .expect("non-empty");

        // Replica receives a shuffled (possibly duplicated) stream.
        let mut order: Vec<usize> = (0..bundles.len()).collect();
        // Deterministic Fisher-Yates from the seed.
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut replica = Mempool::new(N, F, Some(ChainId(1)));
        for &i in &order {
            let _ = replica.insert_bundle(bundles[i].clone());
            if duplicate {
                // Duplicates must never change state.
                let _ = replica.insert_bundle(bundles[i].clone());
            }
        }
        replica.validate_block(&block, &base).expect("same data, must validate");
        prop_assert_eq!(
            leader.extract_txs(&block).unwrap(),
            replica.extract_txs(&block).unwrap()
        );
    }

    /// Zero-copy plane safety: an equivocator's two forks, wrapped as
    /// shared payloads, must stay hash-distinct and must never alias one
    /// allocation — otherwise conflict detection would compare a bundle
    /// against itself. Arc clones sent to each committee half keep aliasing
    /// only their own fork, and the resulting proof verifies.
    #[test]
    fn forks_stay_distinct_through_shared_plane(
        height in 1u64..100,
        n_txs in 1usize..20,
        salt in any::<u64>(),
    ) {
        let key = Keypair::for_node(SignerId(0));
        let txs_a: Vec<Transaction> = (0..n_txs as u64)
            .map(|i| Transaction::new(TxId(salt.wrapping_add(i)), ClientId(0), 0))
            .collect();
        let mut txs_b = txs_a.clone();
        txs_b.push(Transaction::new(
            TxId(salt.wrapping_add(n_txs as u64)),
            ClientId(0),
            0,
        ));
        let build = |txs| {
            Bundle::build(
                ChainId(0),
                Height(height),
                Hash::ZERO,
                TipList::new(N),
                txs,
                Hash::ZERO,
                &key,
            )
        };
        let fork_a = SizedBundle::from(build(txs_a));
        let fork_b = SizedBundle::from(build(txs_b));
        prop_assert_ne!(fork_a.hash(), fork_b.hash());
        prop_assert!(!SizedBundle::ptr_eq(&fork_a, &fork_b));
        // What each committee half receives: clones alias their own fork
        // only, and the memoized sizes equal the recomputed ones.
        let recv_a = fork_a.clone();
        let recv_b = fork_b.clone();
        prop_assert!(SizedBundle::ptr_eq(&fork_a, &recv_a));
        prop_assert!(!SizedBundle::ptr_eq(&recv_a, &recv_b));
        prop_assert_eq!(recv_a.wire_size(), fork_a.body_size() + fork_a.header.wire_size());
        // The two headers form verifiable equivocation evidence.
        let proof = ConflictProof {
            a: fork_a.header.clone(),
            b: fork_b.header.clone(),
        };
        prop_assert!(proof.verify());
        prop_assert_eq!(proof.offender(), ChainId(0));
    }

    /// The cut rule never cuts above what a quorum acknowledged: for any
    /// ack vector, at least `n_c − f` entries are ≥ the cut height.
    #[test]
    fn cut_height_is_quorum_supported(acks in proptest::collection::vec(0u64..50, 4..40)) {
        let f = (acks.len() - 1) / 3;
        let heights: Vec<Height> = acks.iter().map(|&h| Height(h)).collect();
        let cut = quorum_cut_height(&heights, f);
        let supporters = heights.iter().filter(|&&h| h >= cut).count();
        prop_assert!(supporters >= heights.len() - f,
            "cut {cut:?} supported by only {supporters} of {}", heights.len());
        // And it is the *highest* such height: cutting one higher would lose
        // quorum (unless everything is equal).
        let above = heights.iter().filter(|&&h| h > cut).count();
        prop_assert!(above < heights.len() - f);
    }

    /// Theorem 3.1/3.2 surface: tampering with any transaction of any
    /// bundle in a slice changes the block's transaction root.
    #[test]
    fn tx_root_pins_slice_content(heights in 1u64..4, victim in 0usize..8) {
        let bundles = bundle_grid(heights);
        let mut leader = Mempool::new(N, F, Some(ChainId(0)));
        for b in &bundles {
            leader.insert_bundle(b.clone()).unwrap();
        }
        let base = leader.committed_base();
        let block = leader
            .build_block(View(1), Hash::ZERO, &base, &Keypair::for_node(SignerId(0)))
            .unwrap();

        // A replica whose victim bundle was swapped for a forged sibling
        // cannot validate the block (signature check inside insert, header
        // hash mismatch, or tx root mismatch catches it).
        let victim = victim % bundles.len();
        let mut forged = bundles.clone();
        let original = &bundles[victim];
        let c = original.header.chain;
        forged[victim] = Bundle::build(
            c,
            original.header.height,
            original.header.parent,
            original.header.tips.clone(),
            vec![Transaction::new(TxId(999_999), ClientId(9), 0)],
            Hash::ZERO,
            &Keypair::for_node(SignerId(c.0)),
        );
        let mut replica = Mempool::new(N, F, Some(ChainId(1)));
        let mut conflict_detected = false;
        for b in &forged {
            if let Ok(InsertOutcome::Conflict(_)) = replica.insert_bundle(b.clone()) {
                conflict_detected = true;
            }
        }
        let verdict = replica.validate_block(&block, &base);
        prop_assert!(
            verdict.is_err() || conflict_detected,
            "a replica holding forged content must not silently validate"
        );
    }
}

/// Deterministic unit check of the Fig. 1 worked example.
#[test]
fn fig1_worked_example() {
    // Tip-list matrix from Fig. 1 (rows = observers' latest tip lists).
    let matrix = [
        [5u64, 6, 5, 5], // from bdl_1_5
        [5, 6, 4, 4],    // from bdl_2_6
        [5, 5, 4, 4],    // from bdl_3_5
        [4, 5, 5, 4],    // from bdl_4_5
    ];
    // Leader node 1 holds everything it has seen; the paper's resulting
    // cut is [5, 5, 4, 4].
    let expected = [5u64, 5, 4, 4];
    for chain in 0..4 {
        let acks: Vec<Height> = (0..4).map(|node| Height(matrix[node][chain])).collect();
        assert_eq!(
            quorum_cut_height(&acks, 1),
            Height(expected[chain]),
            "chain {chain}"
        );
    }
}
