//! Long-run hygiene: state that must stay bounded over extended operation
//! actually stays bounded (slots, block trees, cut records, mempool
//! pruning).

use predis::consensus::planes::PredisPlane;
use predis::consensus::{ConsMsg, HotStuffNode, PbftNode};
use predis::experiments::{NetEnv, Protocol, ThroughputSetup};
use predis::sim::prelude::*;
use predis::types::ChainId;

#[test]
fn pbft_state_stays_bounded_over_a_long_run() {
    let setup = ThroughputSetup {
        protocol: Protocol::PPbft,
        n_c: 4,
        clients: 4,
        offered_tps: 8_000.0,
        env: NetEnv::Lan,
        duration_secs: 60,
        warmup_secs: 10,
        seed: 91,
        ..Default::default()
    };
    let sim = setup.run_sim();
    let summary = setup.summarize(&sim);
    assert!(summary.throughput_tps > 7_000.0);
    for me in 0..4u32 {
        let node = sim
            .actor_as::<ActorOf<PbftNode<PredisPlane>, ConsMsg>>(NodeId(me))
            .unwrap()
            .core();
        // The retention window (256 slots, kept for crash-recovery state
        // transfer) plus in-flight slots bounds memory.
        assert!(
            node.retained_slots() <= 256 + 8 + 2,
            "replica {me} retains {} slots after a minute",
            node.retained_slots()
        );
        assert!(
            node.plane().retained_cuts() <= 1024,
            "replica {me} retains {} cuts",
            node.plane().retained_cuts()
        );
        // Committed bundles are pruned from the mempool: chains hold only
        // the uncommitted suffix.
        let pool = node.plane().mempool();
        for c in 0..4u32 {
            let chain = pool.chain(ChainId(c));
            let backlog = chain.tip().0 - chain.committed().0;
            assert!(
                backlog < 500,
                "replica {me} chain {c}: {backlog} uncommitted bundles piled up"
            );
        }
    }
}

#[test]
fn hotstuff_block_tree_stays_bounded() {
    let setup = ThroughputSetup {
        protocol: Protocol::PHs,
        n_c: 4,
        clients: 4,
        offered_tps: 8_000.0,
        env: NetEnv::Lan,
        duration_secs: 60,
        warmup_secs: 10,
        seed: 93,
        ..Default::default()
    };
    let sim = setup.run_sim();
    let summary = setup.summarize(&sim);
    assert!(summary.throughput_tps > 7_000.0);
    for me in 0..4u32 {
        let node = sim
            .actor_as::<ActorOf<HotStuffNode<PredisPlane>, ConsMsg>>(NodeId(me))
            .unwrap()
            .core();
        // Retention window (256 blocks for crash-recovery state transfer)
        // plus the live pipeline.
        assert!(
            node.retained_blocks() <= 256 + 16,
            "replica {me} retains {} blocks after hundreds of rounds",
            node.retained_blocks()
        );
        assert!(node.executed_blocks > 200, "replica {me} executed too few");
    }
}
