//! Multi-Zone under churn: relayers leave mid-stream and the zone heals
//! (§IV-E "Fix the Number of Relayers"); block reconstruction keeps
//! working through the backup/pull paths.

use predis::multizone::{MultiZoneNode, NetMsg, SyntheticLoad, ZoneConfig, ZoneSource};
use predis::sim::prelude::*;

const N_C: usize = 4;
const FULLS: usize = 18;
const ZONES: usize = 3;

fn build(seed: u64, leavers: &[usize], crashers: &[usize]) -> Sim<NetMsg> {
    let network = Network::new(LatencyModel::lan(), SimDuration::ZERO);
    let mut sim: Sim<NetMsg> = Sim::new(seed, network);
    let cons: Vec<NodeId> = (0..N_C as u32).map(NodeId).collect();
    let zcfg = ZoneConfig {
        n_c: N_C,
        f: (N_C - 1) / 3,
        max_children: 24,
        alive_interval: SimDuration::from_millis(250),
        digest_interval: SimDuration::from_millis(500),
        consensus: cons.clone(),
        retire_unannounced: false,
    };
    let mut load = SyntheticLoad::for_block_size(2_000_000, 40, SimDuration::from_secs(2));
    load.blocks = 8;
    load.start_at = SimDuration::from_secs(4);
    for i in 0..N_C {
        sim.add_node(
            LinkConfig::paper_default(),
            Box::new(ActorOf::<_, NetMsg>::new(ZoneSource::new(
                i as u32,
                zcfg.clone(),
                Some(load.clone()),
            ))),
            SimTime::ZERO,
        );
    }
    let fulls: Vec<NodeId> = (N_C as u32..(N_C + FULLS) as u32).map(NodeId).collect();
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); ZONES];
    for (j, &fnode) in fulls.iter().enumerate() {
        members[j % ZONES].push(fnode);
    }
    let mut faults = FaultPlan::none();
    for (j, &fnode) in fulls.iter().enumerate() {
        let zone = j % ZONES;
        let mates: Vec<NodeId> = members[zone]
            .iter()
            .copied()
            .filter(|n| *n != fnode)
            .collect();
        let backups: Vec<NodeId> = members[(zone + 1) % ZONES]
            .iter()
            .copied()
            .take(2)
            .collect();
        let mut node = MultiZoneNode::new(zcfg.clone(), j as u64, mates).with_backups(backups);
        if leavers.contains(&j) {
            // Voluntary, announced departure mid-stream.
            node = node.leaving_at(SimTime::from_secs(8));
        }
        if crashers.contains(&j) {
            // Unannounced crash mid-stream.
            faults.crash(fnode, SimTime::from_secs(9));
        }
        sim.add_node(
            LinkConfig::paper_default(),
            Box::new(ActorOf::<_, NetMsg>::new(node)),
            SimTime::from_millis(10 * j as u64),
        );
    }
    sim.set_faults(faults);
    sim
}

/// Survivors that should have completed every block.
fn survivors(leavers: &[usize], crashers: &[usize]) -> Vec<usize> {
    (0..FULLS)
        .filter(|j| !leavers.contains(j) && !crashers.contains(j))
        .collect()
}

fn completed_blocks(sim: &Sim<NetMsg>, j: usize) -> u64 {
    sim.actor_as::<ActorOf<MultiZoneNode, NetMsg>>(NodeId((N_C + j) as u32))
        .expect("node")
        .core()
        .completed_blocks
}

#[test]
fn announced_relayer_departure_heals() {
    // The first node of every zone (earliest relayers) leaves at t=8s.
    let leavers = vec![0usize, 1, 2];
    let mut sim = build(51, &leavers, &[]);
    sim.run_until(SimTime::from_secs(30));
    assert!(sim.metrics().counter("zone.voluntary_leaves") >= 3);
    for j in survivors(&leavers, &[]) {
        assert_eq!(
            completed_blocks(&sim, j),
            8,
            "node {j} missed blocks after announced departures"
        );
    }
}

#[test]
fn relayer_crash_heals_via_timeouts_and_pulls() {
    let crashers = vec![3usize, 4];
    let mut sim = build(53, &[], &crashers);
    sim.run_until(SimTime::from_secs(40));
    for j in survivors(&[], &crashers) {
        assert_eq!(
            completed_blocks(&sim, j),
            8,
            "node {j} missed blocks after crashes"
        );
    }
}

#[test]
fn combined_churn_still_completes() {
    let leavers = vec![6usize];
    let crashers = vec![7usize];
    let mut sim = build(57, &leavers, &crashers);
    sim.run_until(SimTime::from_secs(40));
    let ok = survivors(&leavers, &crashers)
        .into_iter()
        .filter(|&j| completed_blocks(&sim, j) == 8)
        .count();
    assert_eq!(ok, FULLS - 2, "every survivor must reconstruct all blocks");
}
