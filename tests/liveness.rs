//! Liveness under faults: leader crashes trigger view changes (PBFT) and
//! pacemaker round advances (HotStuff); an equivocating producer is banned
//! network-wide and the committee keeps committing (§III-D, §III-E).

use predis::consensus::planes::PredisPlane;
use predis::consensus::{
    ClientCore, ConsMsg, ConsensusConfig, EquivocatingProducer, HotStuffNode, PbftNode, Roster,
};
use predis::experiments::Protocol;
use predis::sim::prelude::*;
use predis::types::{ChainId, ClientId};

/// Builds a P-PBFT or P-HS network directly so faults can be injected at
/// the simulator level; returns (sim, roster).
fn build(
    protocol: Protocol,
    n_c: usize,
    seed: u64,
    attacker: Option<usize>,
) -> (Sim<ConsMsg>, Roster) {
    let network = Network::new(LatencyModel::lan(), SimDuration::ZERO);
    let mut sim: Sim<ConsMsg> = Sim::new(seed, network);
    let cons: Vec<NodeId> = (0..n_c as u32).map(NodeId).collect();
    let clients: Vec<NodeId> = vec![NodeId(n_c as u32), NodeId(n_c as u32 + 1)];
    let roster = Roster::new(cons, clients.clone());
    let mut cfg = ConsensusConfig::default().paced_production(n_c, 512, 100_000_000);
    cfg.view_timeout = SimDuration::from_millis(800);
    // Record metrics at a replica that is neither attacker nor the crashed
    // initial leader (node 0).
    cfg.metrics_replica = 1;
    for me in 0..n_c {
        let actor: Box<dyn Actor<ConsMsg>> = if Some(me) == attacker {
            Box::new(ActorOf::<_, ConsMsg>::new(EquivocatingProducer::new(
                me,
                roster.clone(),
                cfg.clone(),
            )))
        } else {
            match protocol {
                Protocol::PPbft => Box::new(ActorOf::<_, ConsMsg>::new(PbftNode::new(
                    me,
                    roster.clone(),
                    cfg.clone(),
                    PredisPlane::new(me, roster.clone(), cfg.clone()),
                ))),
                Protocol::PHs => Box::new(ActorOf::<_, ConsMsg>::new(HotStuffNode::new(
                    me,
                    roster.clone(),
                    cfg.clone(),
                    PredisPlane::new(me, roster.clone(), cfg.clone()),
                ))),
                _ => unreachable!("liveness tests use the Predis variants"),
            }
        };
        sim.add_node(LinkConfig::paper_default(), actor, SimTime::ZERO);
    }
    for (i, &node) in clients.iter().enumerate() {
        let client = ClientCore::new(ClientId(i as u32), roster.clone(), 1_000.0, 512);
        let _ = node;
        sim.add_node(
            LinkConfig::paper_default(),
            Box::new(ActorOf::<_, ConsMsg>::new(client)),
            SimTime::ZERO,
        );
    }
    (sim, roster)
}

#[test]
fn pbft_survives_leader_crash() {
    let (mut sim, _) = build(Protocol::PPbft, 4, 31, None);
    // Let it commit, then kill the view-0 leader (node 0).
    let mut faults = FaultPlan::none();
    faults.crash(NodeId(0), SimTime::from_secs(4));
    sim.set_faults(faults);
    sim.run_until(SimTime::from_secs(14));
    let before = sim
        .metrics()
        .committed_txs_in(SimTime::ZERO, SimTime::from_secs(4));
    let after = sim
        .metrics()
        .committed_txs_in(SimTime::from_secs(6), SimTime::from_secs(14));
    assert!(before > 500, "committed {before} before the crash");
    assert!(
        after > 2_000,
        "view change must restore progress: only {after} txs after the crash"
    );
    assert!(sim.metrics().counter("pbft.views_entered") >= 1);
}

#[test]
fn hotstuff_survives_replica_crash() {
    let (mut sim, _) = build(Protocol::PHs, 4, 37, None);
    // Crash a non-leader replica: rotation will hit its rounds, the
    // pacemaker must skip them.
    let mut faults = FaultPlan::none();
    faults.crash(NodeId(2), SimTime::from_secs(4));
    sim.set_faults(faults);
    sim.run_until(SimTime::from_secs(16));
    let after = sim
        .metrics()
        .committed_txs_in(SimTime::from_secs(6), SimTime::from_secs(16));
    assert!(
        after > 2_000,
        "pacemaker must route around the dead replica: only {after} txs"
    );
    assert!(sim.metrics().counter("hs.timeouts") >= 1);
}

#[test]
fn equivocator_is_banned_everywhere_and_progress_continues() {
    let (mut sim, _) = build(Protocol::PPbft, 4, 41, Some(3));
    sim.run_until(SimTime::from_secs(12));
    for me in 0..3u32 {
        let node = sim
            .actor_as::<ActorOf<PbftNode<PredisPlane>, ConsMsg>>(NodeId(me))
            .expect("honest replica");
        assert!(
            node.core()
                .plane()
                .mempool()
                .ban_list()
                .is_banned(ChainId(3)),
            "replica {me} must ban the equivocator"
        );
    }
    let committed = sim.metrics().counter("txs_committed");
    assert!(
        committed > 3_000,
        "honest majority must keep committing, got {committed}"
    );
}

#[test]
fn omission_faults_degrade_but_do_not_halt() {
    // Seed picked (after the move to counter-keyed omission streams) so the
    // drop pattern exercises a few view changes without cascading: the run
    // degrades visibly but stays an order of magnitude above the bar.
    let (mut sim, _) = build(Protocol::PPbft, 4, 11, None);
    let mut faults = FaultPlan::none();
    // One replica's outgoing messages are lossy (10%).
    faults.omit_outgoing(NodeId(2), 0.10);
    sim.set_faults(faults);
    sim.run_until(SimTime::from_secs(12));
    let committed = sim.metrics().counter("txs_committed");
    assert!(
        committed > 3_000,
        "10% omission at one replica must not halt the system, got {committed}"
    );
    assert!(sim.metrics().counter("net.dropped") > 0);
}

#[test]
fn censored_clients_reroute_to_honest_replicas() {
    // §III-E censorship attack: a client's entry replica is silent, so its
    // transactions vanish — until the resubmission timer consigns them to
    // the next replica.
    use predis::consensus::SilentNode;
    let n_c = 4usize;
    let network = Network::new(LatencyModel::lan(), SimDuration::ZERO);
    let mut sim: Sim<ConsMsg> = Sim::new(61, network);
    let cons: Vec<NodeId> = (0..n_c as u32).map(NodeId).collect();
    let clients = vec![NodeId(n_c as u32)];
    let roster = Roster::new(cons, clients);
    let mut cfg = ConsensusConfig::default().paced_production(n_c, 512, 100_000_000);
    cfg.metrics_replica = 1;
    cfg.reply_spread = 2; // f + 1: confirmations survive a faulty entry
                          // Client 0's entry replica is index 0 — make it silent.
    for me in 0..n_c {
        let actor: Box<dyn Actor<ConsMsg>> = if me == 0 {
            Box::new(SilentNode)
        } else {
            Box::new(ActorOf::<_, ConsMsg>::new(PbftNode::new(
                me,
                roster.clone(),
                cfg.clone(),
                PredisPlane::new(me, roster.clone(), cfg.clone()),
            )))
        };
        sim.add_node(LinkConfig::paper_default(), actor, SimTime::ZERO);
    }
    let client = ClientCore::new(ClientId(0), roster.clone(), 500.0, 512)
        .resubmit_unconfirmed_after(SimDuration::from_millis(600));
    sim.add_node(
        LinkConfig::paper_default(),
        Box::new(ActorOf::<_, ConsMsg>::new(client)),
        SimTime::ZERO,
    );
    sim.run_until(SimTime::from_secs(12));
    let c = sim
        .actor_as::<ActorOf<ClientCore, ConsMsg>>(NodeId(n_c as u32))
        .unwrap()
        .core();
    assert!(c.resubmitted > 0, "censored txs must be resubmitted");
    assert!(
        c.confirmed > 1_000,
        "resubmitted txs must eventually commit, got {}",
        c.confirmed
    );
}

/// A Byzantine PBFT leader that equivocates: it sends *different* batches
/// for the same slot to different halves of the committee.
#[derive(Debug)]
struct EquivocatingPbftLeader {
    roster: Roster,
}

impl predis::sim::Actor<ConsMsg> for EquivocatingPbftLeader {
    fn on_start(&mut self, ctx: &mut predis::sim::Context<'_, ConsMsg>) {
        use predis::types::{ProposalPayload, SeqNum, Transaction, TxId, View};
        let mk = |salt: u64| {
            ProposalPayload::Batch(vec![Transaction::new(
                TxId(salt),
                predis::types::ClientId(u32::MAX),
                0,
            )])
        };
        let peers = self.roster.peers_of(0);
        for (i, &peer) in peers.iter().enumerate() {
            let payload = if i < peers.len() / 2 { mk(1) } else { mk(2) };
            ctx.send(
                peer,
                ConsMsg::PrePrepare {
                    view: View(0),
                    seq: SeqNum(1),
                    payload: payload.into(),
                },
            );
        }
        // And then it goes silent forever.
    }
    fn on_message(
        &mut self,
        _ctx: &mut predis::sim::Context<'_, ConsMsg>,
        _from: predis::sim::NodeId,
        _msg: ConsMsg,
    ) {
    }
}

#[test]
fn pbft_equivocating_leader_cannot_split_the_committee() {
    use predis::consensus::planes::BatchPlane;
    let n_c = 4usize;
    let network = Network::new(LatencyModel::lan(), SimDuration::ZERO);
    let mut sim: Sim<ConsMsg> = Sim::new(67, network);
    let cons: Vec<NodeId> = (0..n_c as u32).map(NodeId).collect();
    let clients = vec![NodeId(n_c as u32)];
    let roster = Roster::new(cons, clients);
    let cfg = ConsensusConfig {
        view_timeout: SimDuration::from_millis(600),
        metrics_replica: 1,
        ..ConsensusConfig::default()
    };
    for me in 0..n_c {
        let actor: Box<dyn Actor<ConsMsg>> = if me == 0 {
            Box::new(EquivocatingPbftLeader {
                roster: roster.clone(),
            })
        } else {
            Box::new(ActorOf::<_, ConsMsg>::new(PbftNode::new(
                me,
                roster.clone(),
                cfg.clone(),
                BatchPlane::new(cfg.batch_size),
            )))
        };
        sim.add_node(LinkConfig::paper_default(), actor, SimTime::ZERO);
    }
    let client = ClientCore::new(ClientId(0), roster.clone(), 1_000.0, 512).broadcast_submissions();
    sim.add_node(
        LinkConfig::paper_default(),
        Box::new(ActorOf::<_, ConsMsg>::new(client)),
        SimTime::ZERO,
    );
    sim.run_until(SimTime::from_secs(12));
    // Safety: the conflicting slot never commits two ways — all honest
    // replicas execute identical sequences. (The forged batches may commit
    // at most once.) Liveness: a view change replaces the equivocator and
    // real traffic commits.
    let committed = sim.metrics().counter("txs_committed");
    assert!(
        committed > 3_000,
        "committee must replace the equivocating leader, got {committed}"
    );
    assert!(sim.metrics().counter("pbft.views_entered") >= 1);
    let execs: Vec<u64> = (1..4u32)
        .map(|me| {
            sim.actor_as::<ActorOf<PbftNode<BatchPlane>, ConsMsg>>(NodeId(me))
                .unwrap()
                .core()
                .executed_txs
        })
        .collect();
    let spread = execs.iter().max().unwrap() - execs.iter().min().unwrap();
    assert!(spread <= 1_600, "honest replicas diverged: {execs:?}");
}

#[test]
fn crashed_replica_recovers_and_catches_up() {
    // Crash-recovery: replica 2 is down for two seconds, revives with its
    // state intact, detects the gap from peers' commit messages, fetches
    // the missed slots (and their bundles), and converges back to the
    // committee's execution point.
    let (mut sim, _) = build(Protocol::PPbft, 4, 47, None);
    let mut faults = FaultPlan::none();
    faults.crash_for(NodeId(2), SimTime::from_secs(4), SimTime::from_secs(6));
    sim.set_faults(faults);
    sim.run_until(SimTime::from_secs(16));
    let execs: Vec<u64> = (0..4u32)
        .map(|me| {
            sim.actor_as::<ActorOf<PbftNode<PredisPlane>, ConsMsg>>(NodeId(me))
                .unwrap()
                .core()
                .executed_txs
        })
        .collect();
    // The committee never stalled (3 of 4 suffice), so total commits are
    // healthy...
    assert!(
        sim.metrics().counter("txs_committed") > 20_000,
        "commits: {}",
        sim.metrics().counter("txs_committed")
    );
    // ...and the recovered replica is within one catch-up window of the
    // others instead of missing two seconds of history (~4,000 txs).
    let max = *execs.iter().max().unwrap();
    let recovered = execs[2];
    assert!(
        max - recovered < 2_000,
        "replica 2 failed to catch up: {execs:?}"
    );
    assert!(sim.metrics().counter("pbft.catchup_requests") >= 1);
}

#[test]
fn crashed_hotstuff_replica_recovers_and_catches_up() {
    let (mut sim, _) = build(Protocol::PHs, 4, 49, None);
    let mut faults = FaultPlan::none();
    faults.crash_for(NodeId(2), SimTime::from_secs(4), SimTime::from_secs(6));
    sim.set_faults(faults);
    sim.run_until(SimTime::from_secs(16));
    let execs: Vec<u64> = (0..4u32)
        .map(|me| {
            sim.actor_as::<ActorOf<HotStuffNode<PredisPlane>, ConsMsg>>(NodeId(me))
                .unwrap()
                .core()
                .executed_txs
        })
        .collect();
    assert!(
        sim.metrics().counter("txs_committed") > 20_000,
        "commits: {}",
        sim.metrics().counter("txs_committed")
    );
    let max = *execs.iter().max().unwrap();
    let recovered = execs[2];
    assert!(
        max - recovered < 3_000,
        "replica 2 failed to catch up: {execs:?}"
    );
    assert!(sim.metrics().counter("hs.catchup_requests") >= 1);
}
