//! Observability plumbing end-to-end: event tracing and throughput series
//! work on real consensus runs.

use predis::consensus::planes::PredisPlane;
use predis::consensus::{ClientCore, ConsMsg, ConsensusConfig, PbftNode, Roster};
use predis::sim::prelude::*;
use predis::sim::TraceKind;
use predis::types::ClientId;

fn run_traced(seed: u64) -> Sim<ConsMsg> {
    let n_c = 4usize;
    let network = Network::new(LatencyModel::lan(), SimDuration::ZERO);
    let mut sim: Sim<ConsMsg> = Sim::new(seed, network);
    sim.enable_trace(4096);
    let cons: Vec<NodeId> = (0..n_c as u32).map(NodeId).collect();
    let clients = vec![NodeId(n_c as u32)];
    let roster = Roster::new(cons, clients);
    let cfg = ConsensusConfig::default().paced_production(n_c, 512, 100_000_000);
    for me in 0..n_c {
        sim.add_node(
            LinkConfig::paper_default(),
            Box::new(ActorOf::<_, ConsMsg>::new(PbftNode::new(
                me,
                roster.clone(),
                cfg.clone(),
                PredisPlane::new(me, roster.clone(), cfg.clone()),
            ))),
            SimTime::ZERO,
        );
    }
    let client = ClientCore::new(ClientId(0), roster.clone(), 2_000.0, 512);
    sim.add_node(
        LinkConfig::paper_default(),
        Box::new(ActorOf::<_, ConsMsg>::new(client)),
        SimTime::ZERO,
    );
    sim.run_until(SimTime::from_secs(5));
    sim
}

#[test]
fn trace_captures_consensus_traffic() {
    let sim = run_traced(101);
    let trace = sim.trace().expect("tracing enabled");
    // A busy consensus run generates plenty of deliveries and timers, and
    // the counters agree with the metrics sink's message count.
    assert!(trace.deliveries > 1_000, "deliveries: {}", trace.deliveries);
    assert!(trace.timers > 500, "timers: {}", trace.timers);
    assert_eq!(trace.drops, sim.metrics().counter("net.dropped"));
    // Every sent message is delivered or dropped, except the handful still
    // in flight when the horizon cut the run.
    let sent = sim.metrics().counter("net.messages");
    let accounted = trace.deliveries + sim.metrics().counter("net.dropped");
    assert!(accounted <= sent);
    assert!(
        sent - accounted < 500,
        "too many unaccounted messages: {} of {}",
        sent - accounted,
        sent
    );
    // The ring holds the most recent events and renders to text.
    assert_eq!(trace.retained(), 4096);
    let rendered = trace.render();
    assert!(rendered.lines().count() == 4096);
    assert!(rendered.contains("<-"));
    // Deliveries to a specific node are filterable.
    assert!(trace.events_on(NodeId(0)).count() > 0);
    // Trace entries are time-ordered.
    let mut last = SimTime::ZERO;
    for e in trace.events() {
        assert!(e.at >= last);
        last = e.at;
    }
    // Delivered bytes dominated by bundles (25 KB each).
    assert!(trace.delivered_bytes > 1_000_000);
    let _ = TraceKind::Deliver; // type re-exported for users
}

#[test]
fn throughput_series_reflects_commit_cadence() {
    let sim = run_traced(103);
    let series = sim
        .metrics()
        .throughput_series(SimDuration::from_millis(500), SimTime::from_secs(5));
    assert_eq!(series.len(), 10);
    // After the first bucket the committee sustains the 2k offered load.
    let tail_mean: f64 = series[2..].iter().sum::<f64>() / 8.0;
    assert!(
        (1_500.0..2_500.0).contains(&tail_mean),
        "tail mean {tail_mean:.0} tx/s, series {series:?}"
    );
    let stable = sim
        .metrics()
        .stable_from(SimDuration::from_millis(500), SimTime::from_secs(5), 0.25)
        .expect("a fixed-rate run settles");
    assert!(stable <= 3, "stabilized late: bucket {stable}");
}
