//! The `predis-dataflow` command line: run any of the framework's
//! experiments from flags, without writing Rust.
//!
//! Subcommands map 1:1 onto the experiment runners in [`predis`]:
//!
//! ```text
//! predis-dataflow throughput  --protocol p-pbft --nc 4 --load 10000 --env wan
//! predis-dataflow propagation --topology multizone:12 --block-mb 10 --fulls 100
//! predis-dataflow topology    --mode multizone:12 --fulls 48 --nc 4
//! predis-dataflow model       --nc 4,8,16
//! ```
//!
//! Parsing is hand-rolled (`--key value` pairs) to keep the dependency set
//! at the workspace's approved crates.

use std::fmt;

use predis::experiments::{
    DistMode, FaultSpec, NetEnv, PropagationSetup, Protocol, ThroughputSetup, Topology,
    TopologySetup,
};
use predis::model::{predis_tps, ModelInputs};
use predis::multizone::FegConfig;
use predis::sim::{LatencyModel, SimDuration};

/// A CLI-level error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// `--key value` pairs parsed from an argument list.
#[derive(Debug, Default)]
pub struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    /// Parses `--key value` pairs; rejects stray positionals.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return err(format!("unexpected argument '{a}' (flags are --key value)"));
            };
            let Some(value) = it.next() else {
                return err(format!("flag --{key} is missing a value"));
            };
            pairs.push((key.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    /// The raw value of a flag, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    /// A comma-separated list of numbers (empty if absent).
    pub fn num_list<T: std::str::FromStr>(&self, key: &str) -> Result<Vec<T>, CliError> {
        match self.get(key) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| CliError(format!("--{key}: cannot parse '{s}'")))
                })
                .collect(),
        }
    }

    /// Flags nobody consumed are reported as errors by subcommands that
    /// want strictness; here we just expose the keys.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(k, _)| k.as_str())
    }
}

fn parse_protocol(s: &str) -> Result<Protocol, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "pbft" => Ok(Protocol::Pbft),
        "p-pbft" | "ppbft" => Ok(Protocol::PPbft),
        "hotstuff" | "hs" => Ok(Protocol::HotStuff),
        "p-hs" | "phs" => Ok(Protocol::PHs),
        "narwhal" => Ok(Protocol::Narwhal),
        "stratus" => Ok(Protocol::Stratus),
        other => err(format!(
            "unknown protocol '{other}' (pbft, p-pbft, hotstuff, p-hs, narwhal, stratus)"
        )),
    }
}

fn parse_env(s: &str) -> Result<NetEnv, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "lan" => Ok(NetEnv::Lan),
        "wan" => Ok(NetEnv::Wan),
        other => err(format!("unknown env '{other}' (lan, wan)")),
    }
}

fn parse_topology(s: &str) -> Result<Topology, CliError> {
    let lower = s.to_ascii_lowercase();
    if lower == "star" {
        return Ok(Topology::Star);
    }
    if lower == "random" {
        return Ok(Topology::Random {
            degree: 8,
            feg: FegConfig::default(),
        });
    }
    if let Some(z) = lower.strip_prefix("multizone:") {
        let zones: usize = z
            .parse()
            .map_err(|_| CliError(format!("bad zone count '{z}'")))?;
        if zones == 0 {
            return err("zone count must be positive");
        }
        return Ok(Topology::MultiZone { zones });
    }
    err(format!(
        "unknown topology '{s}' (star, random, multizone:<zones>)"
    ))
}

fn parse_mode(s: &str) -> Result<DistMode, CliError> {
    let lower = s.to_ascii_lowercase();
    if lower == "star" {
        return Ok(DistMode::Star);
    }
    if let Some(z) = lower.strip_prefix("multizone:") {
        let zones: usize = z
            .parse()
            .map_err(|_| CliError(format!("bad zone count '{z}'")))?;
        if zones == 0 {
            return err("zone count must be positive");
        }
        return Ok(DistMode::MultiZone { zones });
    }
    err(format!("unknown mode '{s}' (star, multizone:<zones>)"))
}

/// Usage text printed by `--help` / bad invocations.
pub const USAGE: &str = "predis-dataflow — run Predis + Multi-Zone experiments

USAGE:
  predis-dataflow throughput  [--protocol p-pbft] [--nc 4] [--load 10000]
                              [--env wan|lan] [--secs 15] [--warmup 5]
                              [--bundle 50] [--batch 800] [--mbps 100]
                              [--clients 8] [--seed 1]
                              [--silent i,j] [--selective i,j]
  predis-dataflow propagation [--topology multizone:12|star|random]
                              [--block-mb 10] [--fulls 100] [--nc 8]
                              [--blocks 8] [--interval-secs 5] [--seed 3]
  predis-dataflow topology    [--mode multizone:12|star] [--fulls 48]
                              [--nc 4] [--gen 26000] [--secs 15] [--seed 1]
  predis-dataflow model       [--nc 4,8,16] [--mbps 100] [--tx-size 512]
  predis-dataflow series      [--protocol p-pbft] [--load 10000] [--secs 20]
                              [--bucket-ms 1000] (throughput over time)
  predis-dataflow compare     [--protocols p-pbft,pbft] [--load 20000]
                              [--nc 4] [--env wan] [--secs 15]
";

/// Executes a CLI invocation (everything after the binary name); returns
/// the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on bad flags.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return err(USAGE);
    };
    match cmd.as_str() {
        "throughput" => cmd_throughput(&Flags::parse(rest)?),
        "propagation" => cmd_propagation(&Flags::parse(rest)?),
        "topology" => cmd_topology(&Flags::parse(rest)?),
        "model" => cmd_model(&Flags::parse(rest)?),
        "series" => cmd_series(&Flags::parse(rest)?),
        "compare" => cmd_compare(&Flags::parse(rest)?),
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

fn cmd_throughput(flags: &Flags) -> Result<String, CliError> {
    let protocol = parse_protocol(flags.get("protocol").unwrap_or("p-pbft"))?;
    let env = parse_env(flags.get("env").unwrap_or("wan"))?;
    let setup = ThroughputSetup {
        protocol,
        n_c: flags.num("nc", 4usize)?,
        clients: flags.num("clients", 8usize)?,
        offered_tps: flags.num("load", 10_000.0f64)?,
        tx_size: flags.num("tx-size", 512usize)?,
        bundle_size: flags.num("bundle", 50usize)?,
        batch_size: flags.num("batch", 800usize)?,
        env,
        mbps: flags.num("mbps", 100u64)?,
        duration_secs: flags.num("secs", 15u64)?,
        warmup_secs: flags.num("warmup", 5u64)?,
        seed: flags.num("seed", 1u64)?,
        faults: FaultSpec {
            silent: flags.num_list("silent")?,
            selective: flags.num_list("selective")?,
            ..FaultSpec::none()
        },
        per_node_mbps: flags.num_list("per-node-mbps")?,
        pipeline: flags.num("pipeline", 8usize)?,
        ..Default::default()
    };
    if setup.n_c < 1 {
        return err("--nc must be at least 1");
    }
    if setup.warmup_secs >= setup.duration_secs {
        return err("--warmup must be smaller than --secs");
    }
    let s = setup.run();
    Ok(format!(
        "{} n_c={} {:?} offered={:.0} tx/s\n\
         throughput : {:.0} tx/s\n\
         committed  : {} txs\n\
         latency    : mean {:.1} ms, p50 {:.1} ms, p99 {:.1} ms\n",
        setup.protocol.name(),
        setup.n_c,
        env,
        setup.offered_tps,
        s.throughput_tps,
        s.committed_txs,
        s.mean_latency_ms,
        s.p50_latency_ms,
        s.p99_latency_ms,
    ))
}

fn cmd_propagation(flags: &Flags) -> Result<String, CliError> {
    let topology = parse_topology(flags.get("topology").unwrap_or("multizone:12"))?;
    let block_mb: u64 = flags.num("block-mb", 10u64)?;
    let setup = PropagationSetup {
        n_c: flags.num("nc", 8usize)?,
        full_nodes: flags.num("fulls", 100usize)?,
        block_bytes: block_mb * 1_000_000,
        interval: SimDuration::from_secs(flags.num("interval-secs", 5u64)?),
        blocks: flags.num("blocks", 8u64)?,
        mbps: flags.num("mbps", 100u64)?,
        latency: LatencyModel::lan(),
        max_children: flags.num("max-children", 24usize)?,
        locality_zones: flags
            .get("locality")
            .is_some_and(|v| v == "true" || v == "1"),
        seed: flags.num("seed", 3u64)?,
    };
    if setup.blocks == 0 {
        return err("--blocks must be positive");
    }
    let r = setup.run(&topology);
    Ok(format!(
        "{topology:?}, {block_mb} MB blocks, {} full nodes\n\
         to 50%  : {:.0} ms\n\
         to 90%  : {:.0} ms\n\
         to 100% : {:.0} ms\n\
         complete: {}/{} blocks\n",
        setup.full_nodes, r.to_50_ms, r.to_90_ms, r.to_100_ms, r.complete_blocks, r.produced_blocks,
    ))
}

fn cmd_topology(flags: &Flags) -> Result<String, CliError> {
    let mode = parse_mode(flags.get("mode").unwrap_or("multizone:12"))?;
    let setup = TopologySetup {
        n_c: flags.num("nc", 4usize)?,
        full_nodes: flags.num("fulls", 48usize)?,
        mode,
        gen_tps: flags.num("gen", 26_000.0f64)?,
        clients: flags.num("clients", 4usize)?,
        tx_size: flags.num("tx-size", 512usize)?,
        mbps: flags.num("mbps", 100u64)?,
        duration_secs: flags.num("secs", 15u64)?,
        warmup_secs: flags.num("warmup", 5u64)?,
        seed: flags.num("seed", 1u64)?,
    };
    let r = setup.run();
    Ok(format!(
        "{mode:?}, {} full nodes, n_c={}\n\
         consensus throughput : {:.0} tx/s\n\
         consensus upload     : {} MB\n",
        setup.full_nodes,
        setup.n_c,
        r.throughput_tps,
        r.consensus_upload_bytes / 1_000_000,
    ))
}

fn cmd_series(flags: &Flags) -> Result<String, CliError> {
    use predis::sim::{SimDuration, SimTime};
    let protocol = parse_protocol(flags.get("protocol").unwrap_or("p-pbft"))?;
    let env = parse_env(flags.get("env").unwrap_or("wan"))?;
    let secs: u64 = flags.num("secs", 20u64)?;
    let bucket = SimDuration::from_millis(flags.num("bucket-ms", 1_000u64)?);
    if bucket.is_zero() {
        return err("--bucket-ms must be positive");
    }
    let setup = ThroughputSetup {
        protocol,
        n_c: flags.num("nc", 4usize)?,
        offered_tps: flags.num("load", 10_000.0f64)?,
        env,
        duration_secs: secs,
        warmup_secs: 0,
        seed: flags.num("seed", 1u64)?,
        ..Default::default()
    };
    let sim = setup.run_sim();
    let until = SimTime::from_secs(secs);
    let series = sim.metrics().throughput_series(bucket, until);
    let peak = series.iter().cloned().fold(0.0f64, f64::max).max(1.0);
    let mut out = format!(
        "{} throughput over time ({} buckets of {}):
",
        setup.protocol.name(),
        series.len(),
        bucket
    );
    for (i, tps) in series.iter().enumerate() {
        let bar = "#".repeat((tps / peak * 50.0).round() as usize);
        out.push_str(&format!(
            "{:>6.1}s {:>9.0} tx/s |{bar}
",
            (i as f64 + 1.0) * bucket.as_secs_f64(),
            tps
        ));
    }
    match sim.metrics().stable_from(bucket, until, 0.10) {
        Some(idx) => out.push_str(&format!(
            "stable from {:.1}s; stable-window mean {:.0} tx/s
",
            idx as f64 * bucket.as_secs_f64(),
            series[idx..].iter().sum::<f64>() / (series.len() - idx) as f64
        )),
        None => out.push_str(
            "run never settled (offered load above capacity?)
",
        ),
    }
    Ok(out)
}

fn cmd_compare(flags: &Flags) -> Result<String, CliError> {
    let protocols: Vec<Protocol> = match flags.get("protocols") {
        None => vec![Protocol::PPbft, Protocol::Pbft],
        Some(list) => list
            .split(',')
            .filter(|s| !s.is_empty())
            .map(parse_protocol)
            .collect::<Result<_, _>>()?,
    };
    if protocols.is_empty() {
        return err("--protocols needs at least one protocol");
    }
    let env = parse_env(flags.get("env").unwrap_or("wan"))?;
    let secs: u64 = flags.num("secs", 15u64)?;
    let mut out = format!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}
",
        "protocol", "tps", "mean_ms", "p50_ms", "p99_ms"
    );
    for protocol in protocols {
        let s = ThroughputSetup {
            protocol,
            n_c: flags.num("nc", 4usize)?,
            offered_tps: flags.num("load", 20_000.0f64)?,
            env,
            duration_secs: secs,
            warmup_secs: secs / 3,
            seed: flags.num("seed", 1u64)?,
            ..Default::default()
        }
        .run();
        out.push_str(&format!(
            "{:>10} {:>10.0} {:>10.1} {:>10.1} {:>10.1}
",
            protocol.name(),
            s.throughput_tps,
            s.mean_latency_ms,
            s.p50_latency_ms,
            s.p99_latency_ms
        ));
    }
    Ok(out)
}

fn cmd_model(flags: &Flags) -> Result<String, CliError> {
    let mut ncs: Vec<usize> = flags.num_list("nc")?;
    if ncs.is_empty() {
        ncs = vec![4, 8, 16, 32, 64];
    }
    let mbps: u64 = flags.num("mbps", 100u64)?;
    let tx_size: usize = flags.num("tx-size", 512usize)?;
    let mut out = String::from("Eq.2 Predis TPS upper bound\n  n_c      tps\n");
    for n_c in ncs {
        if n_c < 2 {
            return err("--nc entries must be at least 2 for the model");
        }
        let tps = predis_tps(ModelInputs {
            n_c,
            upload_bps: mbps * 1_000_000,
            tx_size,
        });
        out.push_str(&format!("{n_c:>5} {tps:>8.0}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flags_parse_pairs() {
        let f = Flags::parse(&args("--nc 4 --env lan")).unwrap();
        assert_eq!(f.get("nc"), Some("4"));
        assert_eq!(f.get("env"), Some("lan"));
        assert_eq!(f.get("missing"), None);
        assert_eq!(f.num("nc", 0usize).unwrap(), 4);
        assert_eq!(f.num("other", 7usize).unwrap(), 7);
    }

    #[test]
    fn flags_reject_malformed() {
        assert!(Flags::parse(&args("positional")).is_err());
        assert!(Flags::parse(&args("--nc")).is_err());
        let f = Flags::parse(&args("--nc abc")).unwrap();
        assert!(f.num("nc", 0usize).is_err());
    }

    #[test]
    fn num_list_parses_commas() {
        let f = Flags::parse(&args("--silent 1,2,3")).unwrap();
        assert_eq!(f.num_list::<usize>("silent").unwrap(), vec![1, 2, 3]);
        assert_eq!(f.num_list::<usize>("absent").unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn protocol_and_env_names() {
        assert_eq!(parse_protocol("P-PBFT").unwrap(), Protocol::PPbft);
        assert_eq!(parse_protocol("narwhal").unwrap(), Protocol::Narwhal);
        assert!(parse_protocol("raft").is_err());
        assert_eq!(parse_env("LAN").unwrap(), NetEnv::Lan);
        assert!(parse_env("moon").is_err());
    }

    #[test]
    fn topology_strings() {
        assert_eq!(parse_topology("star").unwrap(), Topology::Star);
        assert_eq!(
            parse_topology("multizone:12").unwrap(),
            Topology::MultiZone { zones: 12 }
        );
        assert!(parse_topology("multizone:0").is_err());
        assert!(parse_topology("mesh").is_err());
        assert_eq!(parse_mode("star").unwrap(), DistMode::Star);
        assert!(parse_mode("random").is_err());
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&args("help")).unwrap().contains("USAGE"));
        assert!(run(&args("frobnicate")).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn model_subcommand_is_instant() {
        let out = run(&args("model --nc 4,8")).unwrap();
        assert!(out.contains("Eq.2"));
        // 4 nodes, 100 Mbps, 512 B: ~32.6 ktps.
        assert!(out.contains("32552") || out.contains("3255"));
        assert!(run(&args("model --nc 1")).is_err());
    }

    #[test]
    fn compare_rejects_empty_protocol_list() {
        assert!(run(&args("compare --protocols ,")).is_err());
        assert!(run(&args("compare --protocols raft")).is_err());
    }

    #[test]
    fn throughput_validation() {
        assert!(run(&args("throughput --warmup 20 --secs 10")).is_err());
        assert!(run(&args("throughput --protocol bogus")).is_err());
    }

    #[test]
    fn tiny_throughput_run_end_to_end() {
        let out = run(&args(
            "throughput --protocol p-pbft --nc 4 --load 1000 --env lan --secs 3 --warmup 1 --seed 5",
        ))
        .unwrap();
        assert!(out.contains("P-PBFT"), "{out}");
        assert!(out.contains("throughput"), "{out}");
    }
}
