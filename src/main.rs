//! The `predis-dataflow` binary: see [`predis_dataflow::cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match predis_dataflow::cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
