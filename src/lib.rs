//! Umbrella crate for the Predis + Multi-Zone data flow framework: re-exports
//! the `predis` facade and hosts the `predis-dataflow` CLI.
//!
//! Most users should depend on the [`predis`] crate directly; this package
//! exists to tie the workspace's examples, integration tests, and command
//! line together.

pub mod cli;

pub use predis::*;
